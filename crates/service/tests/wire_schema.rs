//! Pins the v3 wire format byte-for-byte against a committed golden
//! file, the way `bench_json_schema.rs` pins `BENCH_baseline.json`.
//!
//! A fixed corpus of frames — every kind, every enum arm — is encoded
//! and compared (as hex lines) to `tests/golden/wire_v3.hex`. Any codec
//! change that moves a byte fails here; intentional format changes must
//! bump `WIRE_VERSION` and regenerate the golden file by running this
//! test with `UPDATE_WIRE_GOLDEN=1`.

use doda_core::algebra::AggregateSummary;
use doda_core::byzantine::{ByzantineProfile, ByzantineStrategy, Evidence, Verdict};
use doda_core::fault::{CrashPolicy, FaultProfile};
use doda_core::outcome::{Completion, FaultTally};
use doda_core::sequence::StepEvent;
use doda_core::Interaction;
use doda_graph::NodeId;
use doda_service::{
    decode_event, decode_result, encode_event, encode_result, OverflowPolicy, SessionId, WireError,
    WireEvent, WireResult, WIRE_VERSION,
};
use doda_sim::{AlgorithmSpec, FaultedScenario, Scenario, TrialResult};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/wire_v3.hex");

fn sample_result() -> TrialResult {
    sample_result_with(None)
}

fn sample_verdict(verdict: Verdict) -> TrialResult {
    TrialResult {
        verdict: Some(verdict),
        ..sample_result()
    }
}

fn sample_result_with(aggregate: Option<AggregateSummary>) -> TrialResult {
    TrialResult {
        algorithm: "gathering".to_string(),
        n: 16,
        termination_time: Some(123),
        interactions_processed: 456,
        transmissions: 15,
        ignored_decisions: 3,
        data_conserved: true,
        completion: Completion::Aggregated,
        faults: FaultTally {
            crashes: 1,
            departures: 2,
            arrivals: 3,
            lost_interactions: 4,
            data_lost: 5,
            data_recovered: 6,
        },
        cost: None,
        aggregate,
        verdict: None,
    }
}

/// The pinned corpus: one frame per kind, collectively covering every
/// enum arm the codec can emit.
fn corpus() -> (Vec<WireEvent>, Vec<WireResult>) {
    let events = vec![
        WireEvent::OpenScenario {
            session: SessionId(1),
            spec: AlgorithmSpec::Waiting,
            scenario: Scenario::Uniform.into(),
            n: 16,
            seed: 42,
            horizon: None,
            slice_budget: None,
        },
        WireEvent::OpenScenario {
            session: SessionId(2),
            spec: AlgorithmSpec::WaitingGreedy { tau: Some(77) },
            scenario: FaultedScenario {
                base: Scenario::Zipf { exponent: 1.2 },
                faults: Some(FaultProfile {
                    crash: 0.001,
                    departure: 0.002,
                    arrival: 0.003,
                    loss: 0.05,
                    crash_policy: CrashPolicy::DatumRecoverable,
                    min_live: 4,
                }),
                byzantine: None,
            },
            n: 32,
            seed: 7,
            horizon: Some(10_000),
            slice_budget: Some(512),
        },
        WireEvent::OpenScenario {
            session: SessionId(3),
            spec: AlgorithmSpec::WaitingGreedy { tau: None },
            scenario: Scenario::Community {
                communities: 4,
                p_intra: 0.9,
            }
            .into(),
            n: 64,
            seed: 9,
            horizon: None,
            slice_budget: Some(128),
        },
        WireEvent::OpenScenario {
            session: SessionId(4),
            spec: AlgorithmSpec::SpanningTree,
            scenario: Scenario::IntervalConnected { t: 8 }.into(),
            n: 24,
            seed: 11,
            horizon: None,
            slice_budget: None,
        },
        WireEvent::OpenScenario {
            session: SessionId(5),
            spec: AlgorithmSpec::FutureBroadcast,
            scenario: Scenario::WeightedZipf { exponent: 1.2 }.into(),
            n: 12,
            seed: 13,
            horizon: None,
            slice_budget: None,
        },
        WireEvent::OpenScenario {
            session: SessionId(6),
            spec: AlgorithmSpec::OfflineOptimal,
            scenario: Scenario::RoundIsolator.into(),
            n: 10,
            seed: 17,
            horizon: None,
            slice_budget: None,
        },
        WireEvent::OpenScenario {
            session: SessionId(10),
            spec: AlgorithmSpec::Gathering,
            scenario: Scenario::Uniform.with_byzantine(ByzantineProfile::duplicate(0.25)),
            n: 20,
            seed: 19,
            horizon: None,
            slice_budget: None,
        },
        WireEvent::OpenScenario {
            session: SessionId(11),
            spec: AlgorithmSpec::Gathering,
            scenario: FaultedScenario {
                base: Scenario::Vehicular,
                faults: Some(FaultProfile::crash(0.002)),
                byzantine: Some(ByzantineProfile::drop_carried(0.1)),
            },
            n: 18,
            seed: 23,
            horizon: Some(4_000),
            slice_budget: None,
        },
        WireEvent::OpenExternal {
            session: SessionId(7),
            spec: AlgorithmSpec::Gathering,
            n: 8,
            horizon: None,
            slice_budget: Some(64),
            inbox_capacity: Some(16),
            overflow: OverflowPolicy::Block,
        },
        WireEvent::OpenExternal {
            session: SessionId(8),
            spec: AlgorithmSpec::Waiting,
            n: 6,
            horizon: Some(500),
            slice_budget: None,
            inbox_capacity: None,
            overflow: OverflowPolicy::Shed,
        },
        WireEvent::Event {
            session: SessionId(7),
            event: StepEvent::Interaction(Interaction::new(NodeId(1), NodeId(2))),
        },
        WireEvent::Event {
            session: SessionId(7),
            event: StepEvent::Lost(Interaction::new(NodeId(3), NodeId(4))),
        },
        WireEvent::Event {
            session: SessionId(7),
            event: StepEvent::Crash {
                node: NodeId(5),
                policy: CrashPolicy::DatumLost,
            },
        },
        WireEvent::Event {
            session: SessionId(7),
            event: StepEvent::Departure(NodeId(6)),
        },
        WireEvent::Event {
            session: SessionId(7),
            event: StepEvent::Arrival(NodeId(7)),
        },
        WireEvent::Close {
            session: SessionId(7),
        },
    ];
    let results = vec![
        WireResult::Result {
            session: SessionId(1),
            result: sample_result(),
        },
        WireResult::Result {
            session: SessionId(2),
            result: sample_result_with(Some(AggregateSummary::Count { value: 16 })),
        },
        WireResult::Result {
            session: SessionId(3),
            result: sample_result_with(Some(AggregateSummary::Sum { value: 8.125 })),
        },
        WireResult::Result {
            session: SessionId(4),
            result: sample_result_with(Some(AggregateSummary::Min { value: 0.0625 })),
        },
        WireResult::Result {
            session: SessionId(5),
            result: sample_result_with(Some(AggregateSummary::Max { value: 0.9375 })),
        },
        WireResult::Result {
            session: SessionId(6),
            result: sample_result_with(Some(AggregateSummary::Distinct { estimate: 15.5 })),
        },
        WireResult::Result {
            session: SessionId(7),
            result: sample_result_with(Some(AggregateSummary::Quantile {
                count: 16,
                median: 0.5,
                p95: 0.875,
            })),
        },
        WireResult::Result {
            session: SessionId(10),
            result: sample_verdict(Verdict::Clean),
        },
        WireResult::Result {
            session: SessionId(11),
            result: sample_verdict(Verdict::Detected {
                evidence: Evidence {
                    time: 321,
                    liar: NodeId(4),
                    strategy: ByzantineStrategy::Forge,
                },
            }),
        },
        WireResult::Result {
            session: SessionId(12),
            result: sample_verdict(Verdict::Detected {
                evidence: Evidence {
                    time: 654,
                    liar: NodeId(9),
                    strategy: ByzantineStrategy::Equivocate,
                },
            }),
        },
        WireResult::Result {
            session: SessionId(13),
            result: sample_verdict(Verdict::Tolerated),
        },
        WireResult::Result {
            session: SessionId(14),
            result: sample_verdict(Verdict::Corrupted),
        },
        WireResult::Error {
            session: SessionId(9),
            message: "unknown session #9".to_string(),
        },
    ];
    (events, results)
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn corpus_hex() -> String {
    let (events, results) = corpus();
    let mut lines: Vec<String> = events
        .iter()
        .map(|e| hex(&encode_event(e).expect("encode event")))
        .collect();
    lines.extend(
        results
            .iter()
            .map(|r| hex(&encode_result(r).expect("encode result"))),
    );
    let mut joined = lines.join("\n");
    joined.push('\n');
    joined
}

#[test]
fn wire_v3_bytes_match_the_golden_file() {
    let actual = corpus_hex();
    if std::env::var_os("UPDATE_WIRE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &actual).expect("write golden file");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden file missing — run with UPDATE_WIRE_GOLDEN=1 to generate it, then commit it",
    );
    assert_eq!(
        actual, golden,
        "wire bytes changed: bump WIRE_VERSION and regenerate with UPDATE_WIRE_GOLDEN=1"
    );
}

#[test]
fn every_corpus_frame_round_trips() {
    let (events, results) = corpus();
    for event in &events {
        let decoded =
            decode_event(&encode_event(event).expect("encode event")).expect("decode event");
        assert_eq!(&decoded, event);
    }
    for result in &results {
        let decoded =
            decode_result(&encode_result(result).expect("encode result")).expect("decode result");
        assert_eq!(&decoded, result);
    }
}

#[test]
fn frames_carry_the_pinned_version_and_length_prefix() {
    let frame = encode_event(&WireEvent::Close {
        session: SessionId(3),
    })
    .expect("encode");
    let declared = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
    assert_eq!(declared, frame.len() - 4);
    assert_eq!(frame[4], WIRE_VERSION);
    assert_eq!(frame[5], 0x04);
}

#[test]
fn malformed_frames_decode_to_precise_errors() {
    let frame = encode_event(&WireEvent::Close {
        session: SessionId(3),
    })
    .expect("encode");

    // Truncated mid-payload.
    assert_eq!(
        decode_event(&frame[..frame.len() - 1]),
        Err(WireError::Truncated)
    );
    // Declared length exceeds the buffer.
    assert_eq!(decode_event(&frame[..5]), Err(WireError::Truncated));
    // Bytes past the declared payload.
    let mut long = frame.clone();
    long.push(0);
    assert_eq!(decode_event(&long), Err(WireError::TrailingBytes));
    // A future version is refused, not misread.
    let mut vnext = frame.clone();
    vnext[4] = WIRE_VERSION + 1;
    assert_eq!(
        decode_event(&vnext),
        Err(WireError::UnknownVersion(WIRE_VERSION + 1))
    );
    // Result kinds are not client events and vice versa.
    let mut wrong_kind = frame.clone();
    wrong_kind[5] = 0x81;
    assert_eq!(decode_event(&wrong_kind), Err(WireError::UnknownKind(0x81)));
    assert_eq!(decode_result(&frame), Err(WireError::UnknownKind(0x04)));
    // An out-of-range enum tag inside the payload.
    let mut bad_tag = encode_event(&WireEvent::Event {
        session: SessionId(7),
        event: StepEvent::Departure(NodeId(6)),
    })
    .expect("encode");
    let tag_at = bad_tag.len() - 5;
    bad_tag[tag_at] = 0xee;
    assert_eq!(
        decode_event(&bad_tag),
        Err(WireError::UnknownTag {
            what: "step event",
            tag: 0xee
        })
    );
}

#[test]
#[cfg(target_pointer_width = "64")]
fn oversized_usize_fields_are_typed_errors_not_silent_wraps() {
    // A node id above u32::MAX must refuse to encode instead of wrapping
    // to a different node on the wire.
    let oversized = NodeId((u32::MAX as usize) + 1);
    let refused = encode_event(&WireEvent::Event {
        session: SessionId(1),
        event: StepEvent::Departure(oversized),
    });
    assert_eq!(refused, Err(WireError::OutOfRange { what: "node id" }));

    let refused = encode_event(&WireEvent::OpenExternal {
        session: SessionId(1),
        spec: AlgorithmSpec::Gathering,
        n: (u32::MAX as usize) + 2,
        horizon: None,
        slice_budget: None,
        inbox_capacity: None,
        overflow: OverflowPolicy::Shed,
    });
    assert_eq!(
        refused,
        Err(WireError::OutOfRange {
            what: "population size"
        })
    );
}

#[test]
fn oversized_error_messages_truncate_instead_of_panicking() {
    // Error text is advisory: a message past the str16 length field is
    // truncated at a char boundary, never a panic or a failed frame.
    let long = "é".repeat(40_000); // 80_000 bytes of two-byte chars
    let frame = encode_result(&WireResult::Error {
        session: SessionId(5),
        message: long.clone(),
    })
    .expect("long messages still encode");
    match decode_result(&frame).expect("decode truncated message") {
        WireResult::Error { session, message } => {
            assert_eq!(session, SessionId(5));
            assert!(message.len() <= usize::from(u16::MAX));
            assert!(!message.is_empty());
            assert!(
                long.starts_with(&message),
                "prefix survives, intact chars only"
            );
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
}
