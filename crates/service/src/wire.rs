//! Wire format v3: compact, versioned, length-prefixed binary frames.
//!
//! Every frame is `[payload_len: u32 LE][payload]`, and every payload
//! starts `[version: u8][kind: u8]`. Client→service payloads decode to
//! [`WireEvent`]; service→client payloads decode to [`WireResult`]. The
//! byte layout is **pinned by a golden file**
//! (`tests/golden/wire_v3.hex`, checked by `tests/wire_schema.rs` the
//! way `BENCH_baseline.json`'s schema is) — changing any encoding below
//! requires bumping [`WIRE_VERSION`] and regenerating the golden file.
//! (v1 → v2 appended the aggregate summary to the trial result; v2 → v3
//! added the Byzantine plan to the scenario encoding and the audit
//! verdict to the trial result; see below.)
//!
//! ## Payload kinds
//!
//! | kind | direction | body |
//! |------|-----------|------|
//! | `0x01` OpenScenario | c→s | session `u64`, spec, scenario, `n: u32`, `seed: u64`, horizon `opt u64`, slice budget `opt u64` |
//! | `0x02` OpenExternal | c→s | session `u64`, spec, `n: u32`, horizon `opt u64`, slice budget `opt u64`, inbox capacity `opt u64`, overflow `u8` |
//! | `0x03` Event        | c→s | session `u64`, step event |
//! | `0x04` Close        | c→s | session `u64` |
//! | `0x81` Result       | s→c | session `u64`, trial result |
//! | `0x82` Error        | s→c | session `u64`, message `str16` |
//!
//! Scalars are little-endian; `opt u64` is a presence byte followed by
//! the value when present; `str16` is a `u16` length followed by UTF-8
//! bytes; enums are one tag byte (in declaration order) followed by
//! their fields. `u32` fields carrying `usize` values (node ids, `n`,
//! scenario parameters) are checked at encode time — a value above
//! `u32::MAX` is a typed [`WireError::OutOfRange`], never a silent
//! wrap — while `str16` text is advisory and truncates at a char
//! boundary to fit its length field. A scenario is the base tag and
//! fields, a fault-plan presence byte (`1` followed by the profile
//! fields when present), then a Byzantine-plan presence byte (`1`
//! followed by `fraction: f64` and a strategy tag — `0` forge, `1`
//! duplicate, `2` drop-carried, `3` equivocate — when present). A trial
//! result is: algorithm `str16`, `n: u32`,
//! termination time `opt u64`, interactions `u64`, transmissions `u64`,
//! ignored decisions `u64`, data conserved `u8`, completion `u8`, the
//! six fault-tally counters as `u64`s, a reserved cost byte (`0`;
//! service results never carry the paper's sequence-cost analysis),
//! the aggregate summary: one tag byte — `0` none, `1` count (`u64`),
//! `2` sum (`f64`), `3` min (`f64`), `4` max (`f64`), `5` distinct
//! estimate (`f64`), `6` quantile (`count: u64`, `median: f64`,
//! `p95: f64`) — followed by the tagged fields, and the audit verdict:
//! one tag byte — `0` unaudited, `1` clean, `2` detected followed by
//! the evidence (`time: u64`, `liar: u32`, strategy tag `u8`), `3`
//! tolerated, `4` corrupted.

use doda_core::algebra::AggregateSummary;
use doda_core::byzantine::{ByzantineProfile, ByzantineStrategy, Evidence, Verdict};
use doda_core::fault::{CrashPolicy, FaultProfile};
use doda_core::outcome::{Completion, FaultTally};
use doda_core::sequence::StepEvent;
use doda_core::{Interaction, Time};
use doda_graph::NodeId;
use doda_sim::{AlgorithmSpec, FaultedScenario, Scenario, TrialResult};

use crate::error::WireError;
use crate::session::{OverflowPolicy, SessionId};

/// The wire format version this module encodes and decodes.
pub const WIRE_VERSION: u8 = 3;

const KIND_OPEN_SCENARIO: u8 = 0x01;
const KIND_OPEN_EXTERNAL: u8 = 0x02;
const KIND_EVENT: u8 = 0x03;
const KIND_CLOSE: u8 = 0x04;
const KIND_RESULT: u8 = 0x81;
const KIND_ERROR: u8 = 0x82;

/// A client→service message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// Open a scenario-fed session (see
    /// [`SessionManager::open_scenario`](crate::SessionManager::open_scenario)).
    OpenScenario {
        /// The session to open.
        session: SessionId,
        /// The algorithm to run.
        spec: AlgorithmSpec,
        /// The interaction process (with optional fault plan).
        scenario: FaultedScenario,
        /// Population size.
        n: usize,
        /// Sweep-compatible batch seed.
        seed: u64,
        /// Interaction horizon; `None` uses the sweep default.
        horizon: Option<u64>,
        /// Per-slice interaction budget; `None` uses the session default.
        slice_budget: Option<u64>,
    },
    /// Open an externally-fed session (see
    /// [`SessionManager::open_external`](crate::SessionManager::open_external)).
    OpenExternal {
        /// The session to open.
        session: SessionId,
        /// The algorithm to run.
        spec: AlgorithmSpec,
        /// Population size.
        n: usize,
        /// Interaction horizon; `None` uses the sweep default.
        horizon: Option<u64>,
        /// Per-slice interaction budget; `None` uses the session default.
        slice_budget: Option<u64>,
        /// Inbox bound; `None` uses the session default.
        inbox_capacity: Option<usize>,
        /// What a full inbox does with new events.
        overflow: OverflowPolicy,
    },
    /// Feed one step event into an externally-fed session.
    Event {
        /// The target session.
        session: SessionId,
        /// The event.
        event: StepEvent,
    },
    /// Close an externally-fed session's feed.
    Close {
        /// The target session.
        session: SessionId,
    },
}

/// A service→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResult {
    /// A session completed; its final result.
    Result {
        /// The completed session.
        session: SessionId,
        /// The session's trial result (byte-identical to the equivalent
        /// standalone sweep's for scenario sessions).
        result: TrialResult,
    },
    /// A per-session request failed service-side.
    Error {
        /// The session the failed request named.
        session: SessionId,
        /// Human-readable failure description.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn new(kind: u8) -> Self {
        // Reserve the length prefix; patched in `finish`.
        Writer(vec![0, 0, 0, 0, WIRE_VERSION, kind])
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    /// Writes a length-prefixed string. Strings are advisory text
    /// (algorithm labels, error messages); anything past the `u16`
    /// length field is truncated at a char boundary rather than
    /// failing the frame.
    fn str16(&mut self, s: &str) {
        let mut end = s.len().min(usize::from(u16::MAX));
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        let len = u16::try_from(end).expect("end is clamped to u16::MAX above");
        self.u16(len);
        self.0.extend_from_slice(&s.as_bytes()[..end]);
    }

    /// Writes a `usize` into a `u32` field, refusing values that would
    /// silently wrap on the wire.
    fn usize32(&mut self, v: usize, what: &'static str) -> Result<(), WireError> {
        let v = u32::try_from(v).map_err(|_| WireError::OutOfRange { what })?;
        self.u32(v);
        Ok(())
    }

    fn node(&mut self, node: NodeId) -> Result<(), WireError> {
        self.usize32(node.0, "node id")
    }

    /// Patches the length prefix and returns the finished frame,
    /// refusing payloads whose length would silently wrap the `u32`
    /// prefix (a ≥ 4 GiB frame would otherwise decode as garbage).
    fn finish(mut self) -> Result<Vec<u8>, WireError> {
        let payload_len = u32::try_from(self.0.len() - 4).map_err(|_| WireError::OutOfRange {
            what: "frame length",
        })?;
        self.0[..4].copy_from_slice(&payload_len.to_le_bytes());
        Ok(self.0)
    }
}

fn put_spec(w: &mut Writer, spec: AlgorithmSpec) {
    match spec {
        AlgorithmSpec::Waiting => w.u8(0),
        AlgorithmSpec::Gathering => w.u8(1),
        AlgorithmSpec::WaitingGreedy { tau } => {
            w.u8(2);
            w.opt_u64(tau);
        }
        AlgorithmSpec::SpanningTree => w.u8(3),
        AlgorithmSpec::FutureBroadcast => w.u8(4),
        AlgorithmSpec::OfflineOptimal => w.u8(5),
    }
}

fn put_scenario(w: &mut Writer, scenario: Scenario) -> Result<(), WireError> {
    match scenario {
        Scenario::Uniform => w.u8(0),
        Scenario::Zipf { exponent } => {
            w.u8(1);
            w.f64(exponent);
        }
        Scenario::Community {
            communities,
            p_intra,
        } => {
            w.u8(2);
            w.usize32(communities, "community count")?;
            w.f64(p_intra);
        }
        Scenario::BodyArea => w.u8(3),
        Scenario::Vehicular => w.u8(4),
        Scenario::WeightedZipf { exponent } => {
            w.u8(5);
            w.f64(exponent);
        }
        Scenario::ObliviousTrap => w.u8(6),
        Scenario::AdaptiveIsolator => w.u8(7),
        Scenario::CrashAwareIsolator => w.u8(8),
        Scenario::RandomMatching => w.u8(9),
        Scenario::Tournament => w.u8(10),
        Scenario::IntervalConnected { t } => {
            w.u8(11);
            w.usize32(t, "connectivity window")?;
        }
        Scenario::RoundIsolator => w.u8(12),
        Scenario::TorusContact => w.u8(13),
    }
    Ok(())
}

fn put_crash_policy(w: &mut Writer, policy: CrashPolicy) {
    w.u8(match policy {
        CrashPolicy::DatumLost => 0,
        CrashPolicy::DatumRecoverable => 1,
    });
}

fn put_byzantine_strategy(w: &mut Writer, strategy: ByzantineStrategy) {
    w.u8(match strategy {
        ByzantineStrategy::Forge => 0,
        ByzantineStrategy::Duplicate => 1,
        ByzantineStrategy::DropCarried => 2,
        ByzantineStrategy::Equivocate => 3,
    });
}

fn put_faulted_scenario(w: &mut Writer, scenario: &FaultedScenario) -> Result<(), WireError> {
    put_scenario(w, scenario.base)?;
    match scenario.faults {
        None => w.u8(0),
        Some(profile) => {
            w.u8(1);
            w.f64(profile.crash);
            w.f64(profile.departure);
            w.f64(profile.arrival);
            w.f64(profile.loss);
            put_crash_policy(w, profile.crash_policy);
            w.usize32(profile.min_live, "live floor")?;
        }
    }
    match scenario.byzantine {
        None => w.u8(0),
        Some(profile) => {
            w.u8(1);
            w.f64(profile.fraction);
            put_byzantine_strategy(w, profile.strategy);
        }
    }
    Ok(())
}

fn put_step_event(w: &mut Writer, event: StepEvent) -> Result<(), WireError> {
    match event {
        StepEvent::Interaction(interaction) => {
            w.u8(0);
            let (a, b) = interaction.pair();
            w.node(a)?;
            w.node(b)?;
        }
        StepEvent::Lost(interaction) => {
            w.u8(1);
            let (a, b) = interaction.pair();
            w.node(a)?;
            w.node(b)?;
        }
        StepEvent::Crash { node, policy } => {
            w.u8(2);
            w.node(node)?;
            put_crash_policy(w, policy);
        }
        StepEvent::Departure(node) => {
            w.u8(3);
            w.node(node)?;
        }
        StepEvent::Arrival(node) => {
            w.u8(4);
            w.node(node)?;
        }
    }
    Ok(())
}

fn put_trial_result(w: &mut Writer, result: &TrialResult) -> Result<(), WireError> {
    w.str16(&result.algorithm);
    w.usize32(result.n, "population size")?;
    w.opt_u64(result.termination_time);
    w.u64(result.interactions_processed);
    w.u64(result.transmissions as u64);
    w.u64(result.ignored_decisions);
    w.u8(u8::from(result.data_conserved));
    w.u8(match result.completion {
        Completion::Aggregated => 0,
        Completion::AggregatedSurvivors => 1,
        Completion::Starved => 2,
    });
    w.u64(result.faults.crashes);
    w.u64(result.faults.departures);
    w.u64(result.faults.arrivals);
    w.u64(result.faults.lost_interactions);
    w.u64(result.faults.data_lost);
    w.u64(result.faults.data_recovered);
    // Reserved: the service path never computes the sequence-cost
    // analysis (it needs a materialised sequence).
    w.u8(0);
    put_aggregate_summary(w, result.aggregate);
    put_verdict(w, result.verdict)?;
    Ok(())
}

fn put_verdict(w: &mut Writer, verdict: Option<Verdict>) -> Result<(), WireError> {
    match verdict {
        None => w.u8(0),
        Some(Verdict::Clean) => w.u8(1),
        Some(Verdict::Detected { evidence }) => {
            w.u8(2);
            w.u64(evidence.time);
            w.node(evidence.liar)?;
            put_byzantine_strategy(w, evidence.strategy);
        }
        Some(Verdict::Tolerated) => w.u8(3),
        Some(Verdict::Corrupted) => w.u8(4),
    }
    Ok(())
}

fn put_aggregate_summary(w: &mut Writer, summary: Option<AggregateSummary>) {
    match summary {
        None => w.u8(0),
        Some(AggregateSummary::Count { value }) => {
            w.u8(1);
            w.u64(value);
        }
        Some(AggregateSummary::Sum { value }) => {
            w.u8(2);
            w.f64(value);
        }
        Some(AggregateSummary::Min { value }) => {
            w.u8(3);
            w.f64(value);
        }
        Some(AggregateSummary::Max { value }) => {
            w.u8(4);
            w.f64(value);
        }
        Some(AggregateSummary::Distinct { estimate }) => {
            w.u8(5);
            w.f64(estimate);
        }
        Some(AggregateSummary::Quantile { count, median, p95 }) => {
            w.u8(6);
            w.u64(count);
            w.f64(median);
            w.f64(p95);
        }
    }
}

/// Encodes a client→service message as one length-prefixed frame.
///
/// # Errors
///
/// [`WireError::OutOfRange`] if a node id or other `usize` field does
/// not fit its fixed-width `u32` wire field.
pub fn encode_event(event: &WireEvent) -> Result<Vec<u8>, WireError> {
    Ok(match event {
        WireEvent::OpenScenario {
            session,
            spec,
            scenario,
            n,
            seed,
            horizon,
            slice_budget,
        } => {
            let mut w = Writer::new(KIND_OPEN_SCENARIO);
            w.u64(session.0);
            put_spec(&mut w, *spec);
            put_faulted_scenario(&mut w, scenario)?;
            w.usize32(*n, "population size")?;
            w.u64(*seed);
            w.opt_u64(*horizon);
            w.opt_u64(*slice_budget);
            w.finish()?
        }
        WireEvent::OpenExternal {
            session,
            spec,
            n,
            horizon,
            slice_budget,
            inbox_capacity,
            overflow,
        } => {
            let mut w = Writer::new(KIND_OPEN_EXTERNAL);
            w.u64(session.0);
            put_spec(&mut w, *spec);
            w.usize32(*n, "population size")?;
            w.opt_u64(*horizon);
            w.opt_u64(*slice_budget);
            w.opt_u64(inbox_capacity.map(|c| c as u64));
            w.u8(match overflow {
                OverflowPolicy::Shed => 0,
                OverflowPolicy::Block => 1,
            });
            w.finish()?
        }
        WireEvent::Event { session, event } => {
            let mut w = Writer::new(KIND_EVENT);
            w.u64(session.0);
            put_step_event(&mut w, *event)?;
            w.finish()?
        }
        WireEvent::Close { session } => {
            let mut w = Writer::new(KIND_CLOSE);
            w.u64(session.0);
            w.finish()?
        }
    })
}

/// Encodes a service→client message as one length-prefixed frame.
///
/// # Errors
///
/// [`WireError::OutOfRange`] if a `usize` field does not fit its
/// fixed-width `u32` wire field (strings never fail: they truncate, see
/// the module docs).
pub fn encode_result(result: &WireResult) -> Result<Vec<u8>, WireError> {
    Ok(match result {
        WireResult::Result { session, result } => {
            let mut w = Writer::new(KIND_RESULT);
            w.u64(session.0);
            put_trial_result(&mut w, result)?;
            w.finish()?
        }
        WireResult::Error { session, message } => {
            let mut w = Writer::new(KIND_ERROR);
            w.u64(session.0);
            w.str16(message);
            w.finish()?
        }
    })
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Strips and validates the frame header (length prefix + version),
    /// returning a reader over the body and the kind byte.
    fn open(frame: &'a [u8]) -> Result<(Self, u8), WireError> {
        if frame.len() < 6 {
            return Err(WireError::Truncated);
        }
        let declared = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        if frame.len() - 4 != declared {
            return Err(if frame.len() - 4 < declared {
                WireError::Truncated
            } else {
                WireError::TrailingBytes
            });
        }
        let version = frame[4];
        if version != WIRE_VERSION {
            return Err(WireError::UnknownVersion(version));
        }
        let kind = frame[5];
        Ok((
            Reader {
                bytes: frame,
                at: 6,
            },
            kind,
        ))
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(len).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            tag => Err(WireError::UnknownTag {
                what: "option",
                tag,
            }),
        }
    }

    fn str16(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId(self.u32()? as usize))
    }

    fn end(self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn get_spec(r: &mut Reader<'_>) -> Result<AlgorithmSpec, WireError> {
    Ok(match r.u8()? {
        0 => AlgorithmSpec::Waiting,
        1 => AlgorithmSpec::Gathering,
        2 => AlgorithmSpec::WaitingGreedy {
            tau: r.opt_u64()?.map(|t| t as Time),
        },
        3 => AlgorithmSpec::SpanningTree,
        4 => AlgorithmSpec::FutureBroadcast,
        5 => AlgorithmSpec::OfflineOptimal,
        tag => return Err(WireError::UnknownTag { what: "spec", tag }),
    })
}

fn get_crash_policy(r: &mut Reader<'_>) -> Result<CrashPolicy, WireError> {
    Ok(match r.u8()? {
        0 => CrashPolicy::DatumLost,
        1 => CrashPolicy::DatumRecoverable,
        tag => {
            return Err(WireError::UnknownTag {
                what: "crash policy",
                tag,
            })
        }
    })
}

fn get_faulted_scenario(r: &mut Reader<'_>) -> Result<FaultedScenario, WireError> {
    let base = match r.u8()? {
        0 => Scenario::Uniform,
        1 => Scenario::Zipf { exponent: r.f64()? },
        2 => Scenario::Community {
            communities: r.u32()? as usize,
            p_intra: r.f64()?,
        },
        3 => Scenario::BodyArea,
        4 => Scenario::Vehicular,
        5 => Scenario::WeightedZipf { exponent: r.f64()? },
        6 => Scenario::ObliviousTrap,
        7 => Scenario::AdaptiveIsolator,
        8 => Scenario::CrashAwareIsolator,
        9 => Scenario::RandomMatching,
        10 => Scenario::Tournament,
        11 => Scenario::IntervalConnected {
            t: r.u32()? as usize,
        },
        12 => Scenario::RoundIsolator,
        13 => Scenario::TorusContact,
        tag => {
            return Err(WireError::UnknownTag {
                what: "scenario",
                tag,
            })
        }
    };
    let faults = match r.u8()? {
        0 => None,
        1 => Some(FaultProfile {
            crash: r.f64()?,
            departure: r.f64()?,
            arrival: r.f64()?,
            loss: r.f64()?,
            crash_policy: get_crash_policy(r)?,
            min_live: r.u32()? as usize,
        }),
        tag => {
            return Err(WireError::UnknownTag {
                what: "fault plan",
                tag,
            })
        }
    };
    let byzantine = match r.u8()? {
        0 => None,
        1 => Some(ByzantineProfile {
            fraction: r.f64()?,
            strategy: get_byzantine_strategy(r)?,
        }),
        tag => {
            return Err(WireError::UnknownTag {
                what: "byzantine plan",
                tag,
            })
        }
    };
    Ok(FaultedScenario {
        base,
        faults,
        byzantine,
    })
}

fn get_byzantine_strategy(r: &mut Reader<'_>) -> Result<ByzantineStrategy, WireError> {
    Ok(match r.u8()? {
        0 => ByzantineStrategy::Forge,
        1 => ByzantineStrategy::Duplicate,
        2 => ByzantineStrategy::DropCarried,
        3 => ByzantineStrategy::Equivocate,
        tag => {
            return Err(WireError::UnknownTag {
                what: "byzantine strategy",
                tag,
            })
        }
    })
}

fn get_step_event(r: &mut Reader<'_>) -> Result<StepEvent, WireError> {
    Ok(match r.u8()? {
        0 => StepEvent::Interaction(Interaction::new(r.node()?, r.node()?)),
        1 => StepEvent::Lost(Interaction::new(r.node()?, r.node()?)),
        2 => StepEvent::Crash {
            node: r.node()?,
            policy: get_crash_policy(r)?,
        },
        3 => StepEvent::Departure(r.node()?),
        4 => StepEvent::Arrival(r.node()?),
        tag => {
            return Err(WireError::UnknownTag {
                what: "step event",
                tag,
            })
        }
    })
}

/// Narrows a decoded `u64` into a host `usize`, refusing values that do
/// not fit (only reachable on 32-bit hosts decoding 64-bit frames).
fn usize_from(v: u64, what: &'static str) -> Result<usize, WireError> {
    usize::try_from(v).map_err(|_| WireError::OutOfRange { what })
}

fn get_trial_result(r: &mut Reader<'_>) -> Result<TrialResult, WireError> {
    let algorithm = r.str16()?;
    let n = r.u32()? as usize;
    let termination_time = r.opt_u64()?;
    let interactions_processed = r.u64()?;
    let transmissions = usize_from(r.u64()?, "transmissions")?;
    let ignored_decisions = r.u64()?;
    let data_conserved = r.u8()? != 0;
    let completion = match r.u8()? {
        0 => Completion::Aggregated,
        1 => Completion::AggregatedSurvivors,
        2 => Completion::Starved,
        tag => {
            return Err(WireError::UnknownTag {
                what: "completion",
                tag,
            })
        }
    };
    let faults = FaultTally {
        crashes: r.u64()?,
        departures: r.u64()?,
        arrivals: r.u64()?,
        lost_interactions: r.u64()?,
        data_lost: r.u64()?,
        data_recovered: r.u64()?,
    };
    match r.u8()? {
        0 => {}
        tag => return Err(WireError::UnknownTag { what: "cost", tag }),
    }
    let aggregate = get_aggregate_summary(r)?;
    let verdict = get_verdict(r)?;
    Ok(TrialResult {
        algorithm,
        n,
        termination_time,
        interactions_processed,
        transmissions,
        ignored_decisions,
        data_conserved,
        completion,
        faults,
        cost: None,
        aggregate,
        verdict,
    })
}

fn get_verdict(r: &mut Reader<'_>) -> Result<Option<Verdict>, WireError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(Verdict::Clean),
        2 => Some(Verdict::Detected {
            evidence: Evidence {
                time: r.u64()?,
                liar: r.node()?,
                strategy: get_byzantine_strategy(r)?,
            },
        }),
        3 => Some(Verdict::Tolerated),
        4 => Some(Verdict::Corrupted),
        tag => {
            return Err(WireError::UnknownTag {
                what: "verdict",
                tag,
            })
        }
    })
}

fn get_aggregate_summary(r: &mut Reader<'_>) -> Result<Option<AggregateSummary>, WireError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(AggregateSummary::Count { value: r.u64()? }),
        2 => Some(AggregateSummary::Sum { value: r.f64()? }),
        3 => Some(AggregateSummary::Min { value: r.f64()? }),
        4 => Some(AggregateSummary::Max { value: r.f64()? }),
        5 => Some(AggregateSummary::Distinct { estimate: r.f64()? }),
        6 => Some(AggregateSummary::Quantile {
            count: r.u64()?,
            median: r.f64()?,
            p95: r.f64()?,
        }),
        tag => {
            return Err(WireError::UnknownTag {
                what: "aggregate summary",
                tag,
            })
        }
    })
}

/// Decodes one client→service frame (including its length prefix).
///
/// # Errors
///
/// Any [`WireError`]: truncation, a version or kind this decoder does
/// not speak, out-of-range tags, or trailing bytes.
pub fn decode_event(frame: &[u8]) -> Result<WireEvent, WireError> {
    let (mut r, kind) = Reader::open(frame)?;
    let event = match kind {
        KIND_OPEN_SCENARIO => WireEvent::OpenScenario {
            session: SessionId(r.u64()?),
            spec: get_spec(&mut r)?,
            scenario: get_faulted_scenario(&mut r)?,
            n: r.u32()? as usize,
            seed: r.u64()?,
            horizon: r.opt_u64()?,
            slice_budget: r.opt_u64()?,
        },
        KIND_OPEN_EXTERNAL => WireEvent::OpenExternal {
            session: SessionId(r.u64()?),
            spec: get_spec(&mut r)?,
            n: r.u32()? as usize,
            horizon: r.opt_u64()?,
            slice_budget: r.opt_u64()?,
            inbox_capacity: match r.opt_u64()? {
                None => None,
                Some(c) => Some(usize_from(c, "inbox capacity")?),
            },
            overflow: match r.u8()? {
                0 => OverflowPolicy::Shed,
                1 => OverflowPolicy::Block,
                tag => {
                    return Err(WireError::UnknownTag {
                        what: "overflow policy",
                        tag,
                    })
                }
            },
        },
        KIND_EVENT => WireEvent::Event {
            session: SessionId(r.u64()?),
            event: get_step_event(&mut r)?,
        },
        KIND_CLOSE => WireEvent::Close {
            session: SessionId(r.u64()?),
        },
        kind => return Err(WireError::UnknownKind(kind)),
    };
    r.end()?;
    Ok(event)
}

/// Decodes one service→client frame (including its length prefix).
///
/// # Errors
///
/// Any [`WireError`] (see [`decode_event`]).
pub fn decode_result(frame: &[u8]) -> Result<WireResult, WireError> {
    let (mut r, kind) = Reader::open(frame)?;
    let result = match kind {
        KIND_RESULT => WireResult::Result {
            session: SessionId(r.u64()?),
            result: get_trial_result(&mut r)?,
        },
        KIND_ERROR => WireResult::Error {
            session: SessionId(r.u64()?),
            message: r.str16()?,
        },
        kind => return Err(WireError::UnknownKind(kind)),
    };
    r.end()?;
    Ok(result)
}
