//! One live aggregation session: a resumable engine run plus its event
//! feed.
//!
//! A session is one tenant's aggregation: its own sink, its own
//! population, its own [`doda_core::Engine`] scratch held paused between
//! scheduler slices via the resumable [`doda_core::Engine::step_for`]
//! surface. Sessions come in two feed shapes:
//!
//! * **scenario-fed** — the interaction process is a
//!   [`doda_sim::FaultedScenario`] from the registry, seeded exactly like
//!   trial 0 of a [`doda_sim::Sweep`] with the same seed, so a finished
//!   session's [`TrialResult`] is byte-identical to the standalone sweep's
//!   (pinned by the loopback end-to-end tests);
//! * **externally-fed** — the tenant pushes [`StepEvent`]s into a
//!   *bounded* inbox over the wire; a full inbox sheds or blocks per
//!   [`OverflowPolicy`]. The bound is what keeps the whole service at
//!   `O(sessions + n)` memory no matter how fast tenants produce events.
//!   Pushed events are validated on arrival (nodes in range, no fault
//!   targeting the sink); violations only liveness history can reveal
//!   surface at drain time, where they kill *that* session — never the
//!   scheduler (see
//!   [`SessionManager::poll_failure`](crate::SessionManager::poll_failure)).

use std::collections::VecDeque;

use doda_core::data::IdSet;
use doda_core::engine::{Engine, EngineConfig, RunProgress, StepOutcome};
use doda_core::error::FaultError;
use doda_core::sequence::{AdversaryView, InteractionSource, StepEvent};
use doda_core::{DiscardTransmissions, DodaAlgorithm, Interaction, Time};
use doda_graph::NodeId;
use doda_sim::{finish_trial, AlgorithmSpec, FaultedScenario, Sweep, TrialResult};
use doda_stats::rng::SeedSequence;

use crate::error::ServiceError;

/// Identifies one session (one tenant/sink) within a
/// [`SessionManager`](crate::SessionManager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What a session does when an event arrives while its bounded inbox is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Drop the event and count it ([`SessionManager::shed_count`]); the
    /// push succeeds. Load-shedding keeps producers decoupled.
    ///
    /// [`SessionManager::shed_count`]: crate::SessionManager::shed_count
    #[default]
    Shed,
    /// Refuse the event with [`ServiceError::Backpressure`]; the producer
    /// must drain the scheduler (or wait) and retry.
    Block,
}

/// Per-session tuning: scheduler slice size, inbox bound, overflow
/// policy, and interaction horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Interactions a session may consume per scheduler slice before it
    /// yields the worker ([`doda_core::Engine::step_for`]'s budget).
    pub slice_budget: u64,
    /// Bound on the externally-fed inbox (ignored for scenario sessions).
    pub inbox_capacity: usize,
    /// What to do when the inbox is full.
    pub overflow: OverflowPolicy,
    /// Interaction horizon; `None` uses the sweep default
    /// (`doda_adversary::RandomizedAdversary::default_horizon(n)`), which
    /// keeps scenario sessions byte-compatible with default `Sweep` runs.
    pub horizon: Option<u64>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            slice_budget: 1_024,
            inbox_capacity: 256,
            overflow: OverflowPolicy::Shed,
            horizon: None,
        }
    }
}

/// Where a session currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Has work: the scheduler will step it next slice.
    Runnable,
    /// Externally fed, inbox empty, not closed: idle until the tenant
    /// pushes more events (or closes the session).
    AwaitingEvents,
}

/// The bounded inbox of an externally-fed session, adapted to the
/// engine's [`InteractionSource`] event model: the engine pulls the
/// events the tenant pushed, in arrival order.
#[derive(Debug)]
pub(crate) struct Inbox {
    node_count: usize,
    queue: VecDeque<StepEvent>,
    capacity: usize,
    overflow: OverflowPolicy,
    closed: bool,
    shed: u64,
    high_water: usize,
}

impl Inbox {
    fn new(node_count: usize, capacity: usize, overflow: OverflowPolicy) -> Self {
        Inbox {
            node_count,
            queue: VecDeque::with_capacity(capacity.min(1_024)),
            capacity,
            overflow,
            closed: false,
            shed: 0,
            high_water: 0,
        }
    }

    /// Checks the structural invariants push-time can see: every node the
    /// event names exists, and fault events never target the sink
    /// ([`Session::SINK`]). Liveness-dependent violations (crashing a
    /// dead node, reviving a live one, an interaction with a dead
    /// participant) depend on where the engine is in the queue and are
    /// caught at drain time instead — see
    /// [`SessionManager::poll_failure`](crate::SessionManager::poll_failure).
    fn validate(&self, id: SessionId, event: StepEvent) -> Result<(), ServiceError> {
        let invalid = |cause| ServiceError::InvalidEvent { session: id, cause };
        let in_range = |node: NodeId| {
            if node.index() < self.node_count {
                Ok(())
            } else {
                Err(invalid(FaultError::UnknownNode { node }))
            }
        };
        match event {
            StepEvent::Interaction(interaction) | StepEvent::Lost(interaction) => {
                let (a, b) = interaction.pair();
                in_range(a)?;
                in_range(b)
            }
            StepEvent::Crash { node, .. }
            | StepEvent::Departure(node)
            | StepEvent::Arrival(node) => {
                in_range(node)?;
                if node == Session::SINK {
                    return Err(invalid(FaultError::TargetsSink { node }));
                }
                Ok(())
            }
        }
    }

    fn push(&mut self, id: SessionId, event: StepEvent) -> Result<(), ServiceError> {
        if self.closed {
            return Err(ServiceError::SessionClosed(id));
        }
        self.validate(id, event)?;
        if self.queue.len() >= self.capacity {
            return match self.overflow {
                OverflowPolicy::Shed => {
                    self.shed += 1;
                    Ok(())
                }
                OverflowPolicy::Block => Err(ServiceError::Backpressure {
                    session: id,
                    capacity: self.capacity,
                }),
            };
        }
        self.queue.push_back(event);
        self.high_water = self.high_water.max(self.queue.len());
        Ok(())
    }
}

impl InteractionSource for Inbox {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        // Skip non-interaction events; only callers outside the engine's
        // event loop ever take this path.
        while let Some(event) = self.next_event(t, view) {
            if let StepEvent::Interaction(interaction) = event {
                return Some(interaction);
            }
        }
        None
    }

    fn next_event(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<StepEvent> {
        self.queue.pop_front()
    }
}

/// The two feed shapes of a session.
enum Feed {
    /// A registry scenario streams the events (faults pre-applied by
    /// [`FaultedScenario::source`]).
    Scenario(Box<dyn InteractionSource + Send>),
    /// The tenant pushes events into a bounded inbox.
    External(Inbox),
}

impl std::fmt::Debug for Feed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Feed::Scenario(_) => f.write_str("Feed::Scenario"),
            Feed::External(inbox) => f.debug_tuple("Feed::External").field(inbox).finish(),
        }
    }
}

/// What one scheduler slice of a session produced.
pub(crate) enum SliceOutcome {
    /// Still has work (budget spent); reschedule.
    Runnable,
    /// Externally fed and drained; idle until more events arrive.
    AwaitingEvents,
    /// The run ended (aggregated, starved at the horizon, or the feed was
    /// closed); the result is final.
    Finished(TrialResult),
}

/// One live session: the paused engine run plus its feed.
pub(crate) struct Session {
    id: SessionId,
    spec: AlgorithmSpec,
    algorithm: Box<dyn DodaAlgorithm + Send>,
    engine: Engine<IdSet>,
    progress: RunProgress,
    feed: Feed,
    slice_budget: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("spec", &self.spec)
            .field("progress", &self.progress)
            .field("feed", &self.feed)
            .field("slice_budget", &self.slice_budget)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Every session's sink: node 0, same as a sweep trial's.
    pub(crate) const SINK: NodeId = NodeId(0);

    /// Opens a scenario-fed session, seeded exactly like trial 0 of
    /// `Sweep::scenario(spec, scenario).n(n).seed(seed)` so the eventual
    /// result is byte-identical to that standalone sweep's.
    pub(crate) fn open_scenario(
        id: SessionId,
        spec: AlgorithmSpec,
        scenario: FaultedScenario,
        n: usize,
        seed: u64,
        config: &SessionConfig,
    ) -> Result<Self, ServiceError> {
        if !scenario.supports(spec) {
            return Err(ServiceError::InvalidScenario(format!(
                "{spec} cannot run against the adaptive scenario '{scenario}'"
            )));
        }
        if n < scenario.min_nodes() {
            return Err(ServiceError::InvalidScenario(format!(
                "scenario '{scenario}' needs at least {} nodes, got {n}",
                scenario.min_nodes()
            )));
        }
        scenario.validate(n)?;
        if let Err(e) = scenario.validate_byzantine() {
            return Err(ServiceError::InvalidScenario(format!(
                "invalid byzantine plan for scenario '{scenario}': {e}"
            )));
        }
        // A session steps the engine in slices off `scenario.source`;
        // that path cannot reproduce the audited `run_audited` execution,
        // so accepting a Byzantine plan here would silently return an
        // unaudited result where the equivalent sweep returns a verdict.
        // Byzantine scenarios run through `Sweep` instead.
        if scenario.byzantine.is_some() {
            return Err(ServiceError::InvalidScenario(format!(
                "scenario '{scenario}' carries a byzantine plan; sessions cannot audit \
                 the data plane — run it through a sweep"
            )));
        }
        // Sessions resolve through the sweep's tier logic: a spec the
        // sweep would materialise has no incremental form, so no session
        // can serve it. (The fast tiers — rounds, lanes — are
        // byte-identical to the scalar stream the session runs, so any
        // other label is admissible.)
        let label = Sweep::scenario(spec, scenario).n(n).path_label();
        if label == "materialized" {
            return Err(ServiceError::UnsupportedSpec {
                spec: spec.to_string(),
            });
        }
        let algorithm = spec
            .instantiate_online()
            .expect("non-materialized specs always instantiate online");
        // Trial 0 of a sweep with this seed.
        let trial_seed = SeedSequence::new(seed).seed(0);
        let source = scenario.source(n, trial_seed);
        Ok(Self::start(
            id,
            spec,
            algorithm,
            Feed::Scenario(source),
            n,
            config,
        ))
    }

    /// Opens an externally-fed session with a bounded inbox.
    pub(crate) fn open_external(
        id: SessionId,
        spec: AlgorithmSpec,
        n: usize,
        config: &SessionConfig,
    ) -> Result<Self, ServiceError> {
        let Some(algorithm) = spec.instantiate_online() else {
            return Err(ServiceError::UnsupportedSpec {
                spec: spec.to_string(),
            });
        };
        let inbox = Inbox::new(n, config.inbox_capacity.max(1), config.overflow);
        Ok(Self::start(
            id,
            spec,
            algorithm,
            Feed::External(inbox),
            n,
            config,
        ))
    }

    fn start(
        id: SessionId,
        spec: AlgorithmSpec,
        algorithm: Box<dyn DodaAlgorithm + Send>,
        feed: Feed,
        n: usize,
        config: &SessionConfig,
    ) -> Self {
        let horizon = config
            .horizon
            .unwrap_or(doda_adversary::RandomizedAdversary::default_horizon(n) as u64);
        let mut engine = Engine::new();
        let progress = engine.begin_run(
            n,
            Session::SINK,
            IdSet::singleton,
            EngineConfig::sweep(horizon),
        );
        Session {
            id,
            spec,
            algorithm,
            engine,
            progress,
            feed,
            slice_budget: config.slice_budget.max(1),
        }
    }

    pub(crate) fn id(&self) -> SessionId {
        self.id
    }

    pub(crate) fn status(&self) -> SessionStatus {
        match &self.feed {
            Feed::External(inbox) if inbox.queue.is_empty() && !inbox.closed => {
                SessionStatus::AwaitingEvents
            }
            _ => SessionStatus::Runnable,
        }
    }

    pub(crate) fn push_event(&mut self, event: StepEvent) -> Result<(), ServiceError> {
        match &mut self.feed {
            Feed::External(inbox) => inbox.push(self.id, event),
            // A scenario feed generates its own events; tenant pushes
            // make no sense there.
            Feed::Scenario(_) => Err(ServiceError::NotExternallyFed(self.id)),
        }
    }

    /// Closes the event feed: an externally-fed session finishes once its
    /// inbox drains (instead of idling for more events).
    pub(crate) fn close(&mut self) {
        if let Feed::External(inbox) = &mut self.feed {
            inbox.closed = true;
        }
    }

    pub(crate) fn inbox_len(&self) -> usize {
        match &self.feed {
            Feed::External(inbox) => inbox.queue.len(),
            Feed::Scenario(_) => 0,
        }
    }

    pub(crate) fn shed_count(&self) -> u64 {
        match &self.feed {
            Feed::External(inbox) => inbox.shed,
            Feed::Scenario(_) => 0,
        }
    }

    pub(crate) fn inbox_high_water(&self) -> usize {
        match &self.feed {
            Feed::External(inbox) => inbox.high_water,
            Feed::Scenario(_) => 0,
        }
    }

    /// Runs one scheduler slice: up to `slice_budget` interactions through
    /// the resumable engine surface.
    pub(crate) fn run_slice(&mut self) -> Result<SliceOutcome, ServiceError> {
        let budget = self.slice_budget;
        let outcome = match &mut self.feed {
            Feed::Scenario(source) => self.engine.step_for(
                &mut self.progress,
                self.algorithm.as_mut(),
                source,
                IdSet::singleton,
                budget,
                &mut DiscardTransmissions,
            )?,
            Feed::External(inbox) => self.engine.step_for(
                &mut self.progress,
                self.algorithm.as_mut(),
                inbox,
                IdSet::singleton,
                budget,
                &mut DiscardTransmissions,
            )?,
        };
        Ok(match outcome {
            StepOutcome::BudgetSpent => SliceOutcome::Runnable,
            StepOutcome::Completed | StepOutcome::HorizonReached => {
                SliceOutcome::Finished(self.finish())
            }
            StepOutcome::SourceExhausted => match &self.feed {
                // A scenario source returning `None` is the end of the
                // process — exactly where a sweep's run would stop.
                Feed::Scenario(_) => SliceOutcome::Finished(self.finish()),
                Feed::External(inbox) if inbox.closed => SliceOutcome::Finished(self.finish()),
                Feed::External(_) => SliceOutcome::AwaitingEvents,
            },
        })
    }

    fn finish(&self) -> TrialResult {
        let stats = self.engine.finish_run(&self.progress);
        finish_trial(self.spec, &self.engine, stats, None)
    }
}
