//! The service-boundary error surface.
//!
//! Everything that can go wrong between a client and the
//! [`SessionManager`](crate::SessionManager) is a [`ServiceError`];
//! malformed bytes on the wire are the dedicated [`WireError`] (wrapped
//! as [`ServiceError::Wire`] when they surface at the service boundary).
//! Both are `#[non_exhaustive]` — new failure modes must not be breaking
//! changes — and chain their causes through
//! [`std::error::Error::source`].

use doda_core::error::{EngineError, FaultError};
use doda_core::fault::FaultConfigError;

use crate::session::SessionId;

/// A malformed or unsupported wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The frame ended before its declared payload did.
    Truncated,
    /// The version byte is not a version this decoder speaks.
    UnknownVersion(u8),
    /// The kind byte names no known frame kind.
    UnknownKind(u8),
    /// An enum tag inside the payload is out of range.
    UnknownTag {
        /// Which encoded enum carried the bad tag.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes,
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// A value to encode does not fit its fixed-width wire field (e.g. a
    /// node id or population size above `u32::MAX`). Raised at encode
    /// time instead of silently wrapping on the wire.
    OutOfRange {
        /// Which encoded field overflowed.
        what: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated before the payload ended"),
            WireError::UnknownVersion(v) => write!(f, "unknown wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            WireError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag 0x{tag:02x}")
            }
            WireError::TrailingBytes => write!(f, "trailing bytes after the payload"),
            WireError::BadUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
            WireError::OutOfRange { what } => {
                write!(f, "{what} does not fit its fixed-width wire field")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Everything that can go wrong at the service boundary.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// The session id names no live session.
    UnknownSession(SessionId),
    /// The session id is already taken by a live session.
    DuplicateSession(SessionId),
    /// The session's bounded inbox is full and its overflow policy is
    /// [`OverflowPolicy::Block`](crate::OverflowPolicy::Block): the caller
    /// must drain the scheduler (or wait) before retrying.
    Backpressure {
        /// The session whose inbox is full.
        session: SessionId,
        /// The inbox bound that was hit.
        capacity: usize,
    },
    /// The session's event feed was closed; no further events are
    /// accepted.
    SessionClosed(SessionId),
    /// An event was pushed to a scenario-fed session: its interaction
    /// process streams from the registry scenario, so tenant-pushed
    /// events have nowhere to go.
    NotExternallyFed(SessionId),
    /// A pushed event is structurally invalid for the session's
    /// population — a node outside `0..n`, or a fault event targeting the
    /// sink — and was refused at push time, before it could reach the
    /// engine.
    InvalidEvent {
        /// The session the event was pushed to.
        session: SessionId,
        /// The model invariant the event violates.
        cause: FaultError,
    },
    /// The session was killed mid-run: its event feed produced a state
    /// the engine rejected (e.g. a crash of an already-dead node, which
    /// only liveness history — not push-time validation — can catch).
    /// The session is retired; other sessions are unaffected.
    SessionFault {
        /// The session that was killed.
        session: SessionId,
        /// The engine's rejection.
        cause: EngineError,
    },
    /// The algorithm spec cannot run incrementally: it requires knowledge
    /// of the future, so no streaming session can serve it.
    UnsupportedSpec {
        /// The spec's display label.
        spec: String,
    },
    /// The scenario/population combination is invalid (e.g. `n` below the
    /// scenario's node floor).
    InvalidScenario(String),
    /// The scenario's fault plan is invalid for the requested population.
    FaultConfig(FaultConfigError),
    /// The engine rejected an algorithm decision mid-session.
    Engine(EngineError),
    /// A frame failed to decode.
    Wire(WireError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServiceError::DuplicateSession(id) => write!(f, "session {id} already exists"),
            ServiceError::Backpressure { session, capacity } => write!(
                f,
                "session {session} inbox is full (capacity {capacity}); drain before retrying"
            ),
            ServiceError::SessionClosed(id) => write!(f, "session {id} is closed"),
            ServiceError::NotExternallyFed(id) => write!(
                f,
                "session {id} is scenario-fed and does not accept pushed events"
            ),
            ServiceError::InvalidEvent { session, cause } => {
                write!(f, "invalid event for session {session}: {cause}")
            }
            ServiceError::SessionFault { session, cause } => {
                write!(f, "session {session} killed by its event feed: {cause}")
            }
            ServiceError::UnsupportedSpec { spec } => write!(
                f,
                "{spec} requires knowledge of the future and cannot run as a streaming session"
            ),
            ServiceError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            ServiceError::FaultConfig(e) => write!(f, "invalid fault plan: {e}"),
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::FaultConfig(e) => Some(e),
            ServiceError::Engine(e) => Some(e),
            ServiceError::Wire(e) => Some(e),
            ServiceError::InvalidEvent { cause, .. } => Some(cause),
            ServiceError::SessionFault { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

impl From<FaultConfigError> for ServiceError {
    fn from(e: FaultConfigError) -> Self {
        ServiceError::FaultConfig(e)
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}
