//! Multi-tenant aggregation service over the DODA sweep engine.
//!
//! Where [`doda_sim::Sweep`] answers "run this batch to completion",
//! this crate answers "keep thousands of tenants' aggregations live at
//! once": a [`SessionManager`] owns one [session] per
//! sink/tenant, steps the runnable ones in budgeted slices over a shared
//! worker pool, and streams each [`doda_sim::TrialResult`] out the
//! moment its session finishes. Sessions are either *scenario-fed*
//! (byte-identical to trial 0 of the equivalent standalone sweep) or
//! *externally-fed* through a bounded inbox whose overflow policy —
//! shed or block — is the service's backpressure story.
//!
//! On top sits a compact, versioned [wire format](crate::wire)
//! ([`WireEvent`] in, [`WireResult`] out) and a [`Transport`] trait with
//! an in-memory [`Loopback`] reference implementation, tying a
//! [`ServiceClient`] to a [`ServiceEndpoint`] end-to-end.
//!
//! # Quickstart
//!
//! Run a small fleet of scenario-fed sessions over a loopback wire and
//! collect their results as they stream back:
//!
//! ```
//! use doda_service::prelude::*;
//! use doda_sim::{AlgorithmSpec, Scenario};
//!
//! let (client_end, service_end) = Loopback::pair();
//! let mut client = ServiceClient::new(client_end);
//! let mut service = ServiceEndpoint::new(SessionManager::with_workers(2), service_end);
//!
//! // Each tenant opens its own session; seeds line up with Sweep's.
//! let config = SessionConfig::default();
//! for tenant in 0..4 {
//!     client.open_scenario(
//!         SessionId(tenant),
//!         AlgorithmSpec::Gathering,
//!         Scenario::Uniform,
//!         16,
//!         1_000 + tenant,
//!         &config,
//!     )?;
//! }
//!
//! // Drive the service until every session resolves, then drain replies.
//! service.run_until_idle()?;
//! let mut done = 0;
//! while let Some(reply) = client.poll_result()? {
//!     match reply {
//!         WireResult::Result { result, .. } => {
//!             assert!(result.completion.terminated());
//!             done += 1;
//!         }
//!         WireResult::Error { session, message } => {
//!             panic!("session {session} failed: {message}");
//!         }
//!     }
//! }
//! assert_eq!(done, 4);
//! # Ok::<(), doda_service::ServiceError>(())
//! ```

pub mod error;
pub mod manager;
pub mod session;
pub mod transport;
pub mod wire;

pub use error::{ServiceError, WireError};
pub use manager::SessionManager;
pub use session::{OverflowPolicy, SessionConfig, SessionId, SessionStatus};
pub use transport::{Loopback, ServiceClient, ServiceEndpoint, Transport};
pub use wire::{
    decode_event, decode_result, encode_event, encode_result, WireEvent, WireResult, WIRE_VERSION,
};

/// Everything a service integrator usually needs, in one import.
pub mod prelude {
    pub use crate::error::{ServiceError, WireError};
    pub use crate::manager::SessionManager;
    pub use crate::session::{OverflowPolicy, SessionConfig, SessionId, SessionStatus};
    pub use crate::transport::{Loopback, ServiceClient, ServiceEndpoint, Transport};
    pub use crate::wire::{WireEvent, WireResult, WIRE_VERSION};
}
