//! Pluggable byte transports and the endpoint/client pair that speak the
//! wire format over them.
//!
//! [`Transport`] is the minimal contract: deliver whole frames, in
//! order, without blocking. [`Loopback`] is the in-memory reference
//! implementation (two crossed bounded-by-nothing queues) that the
//! end-to-end tests and the `--service-guard` benchmark drive;
//! a socket-backed transport would implement the same two methods.
//!
//! [`ServiceEndpoint`] is the service side: it drains incoming frames,
//! applies them to its [`SessionManager`], runs scheduler slices, and
//! streams completed results back as [`WireResult::Result`] frames the
//! moment sessions finish. [`ServiceClient`] is the tenant side: typed
//! open/event/close calls that encode to frames, and a typed
//! [`poll_result`](ServiceClient::poll_result) that decodes replies.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use doda_core::sequence::StepEvent;
use doda_sim::{AlgorithmSpec, FaultedScenario};

use crate::error::ServiceError;
use crate::manager::SessionManager;
use crate::session::{SessionConfig, SessionId};
use crate::wire::{
    decode_event, decode_result, encode_event, encode_result, WireEvent, WireResult,
};

/// A non-blocking, ordered, frame-preserving byte transport.
///
/// Implementations carry each frame (length prefix included) intact —
/// the wire format's framing makes reassembly trivial for stream
/// transports, but this trait deals in whole frames.
pub trait Transport {
    /// Queues one frame for the peer.
    ///
    /// # Errors
    ///
    /// Transport-specific delivery failures (the in-memory [`Loopback`]
    /// never fails).
    fn send(&mut self, frame: &[u8]) -> Result<(), ServiceError>;

    /// Takes the next frame from the peer, if one has arrived. Never
    /// blocks.
    fn try_recv(&mut self) -> Option<Vec<u8>>;
}

type FrameQueue = Arc<Mutex<VecDeque<Vec<u8>>>>;

/// In-memory transport: two endpoints over crossed frame queues.
#[derive(Debug)]
pub struct Loopback {
    outgoing: FrameQueue,
    incoming: FrameQueue,
}

impl Loopback {
    /// A connected pair of endpoints: whatever one sends, the other
    /// receives, in order.
    pub fn pair() -> (Loopback, Loopback) {
        let a: FrameQueue = Arc::default();
        let b: FrameQueue = Arc::default();
        (
            Loopback {
                outgoing: Arc::clone(&a),
                incoming: Arc::clone(&b),
            },
            Loopback {
                outgoing: b,
                incoming: a,
            },
        )
    }
}

impl Transport for Loopback {
    fn send(&mut self, frame: &[u8]) -> Result<(), ServiceError> {
        self.outgoing
            .lock()
            .expect("loopback queue poisoned")
            .push_back(frame.to_vec());
        Ok(())
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        self.incoming
            .lock()
            .expect("loopback queue poisoned")
            .pop_front()
    }
}

/// The service side of a connection: a [`SessionManager`] driven by
/// frames from a [`Transport`].
#[derive(Debug)]
pub struct ServiceEndpoint<T: Transport> {
    manager: SessionManager,
    transport: T,
}

impl<T: Transport> ServiceEndpoint<T> {
    /// Wraps a manager and a transport into an endpoint.
    pub fn new(manager: SessionManager, transport: T) -> Self {
        ServiceEndpoint { manager, transport }
    }

    /// One service turn: drain and apply every pending client frame, run
    /// one scheduler slice, and stream out any completions. Returns the
    /// number of sessions stepped (0 = idle).
    ///
    /// Per-session failures are *replied*, not returned: invalid opens,
    /// unknown sessions, refused events, backpressure under
    /// [`OverflowPolicy::Block`](crate::OverflowPolicy::Block), and
    /// sessions killed mid-run by their own event feed (see
    /// [`SessionManager::poll_failure`]) all come back as
    /// [`WireResult::Error`] frames, and the endpoint keeps serving its
    /// other tenants.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] if a frame fails to decode (a broken peer,
    /// not a tenant mistake), plus transport delivery failures.
    pub fn pump(&mut self) -> Result<usize, ServiceError> {
        while let Some(frame) = self.transport.try_recv() {
            let event = decode_event(&frame)?;
            let (session, outcome) = self.apply(event);
            if let Err(error) = outcome {
                self.reply_error(session, &error)?;
            }
        }
        let stepped = self.manager.run_slice();
        while let Some((session, error)) = self.manager.poll_failure() {
            self.reply_error(session, &error)?;
        }
        while let Some((session, result)) = self.manager.poll_result() {
            self.transport
                .send(&encode_result(&WireResult::Result { session, result })?)?;
        }
        Ok(stepped)
    }

    fn reply_error(
        &mut self,
        session: SessionId,
        error: &ServiceError,
    ) -> Result<(), ServiceError> {
        self.transport.send(&encode_result(&WireResult::Error {
            session,
            message: error.to_string(),
        })?)
    }

    fn apply(&mut self, event: WireEvent) -> (SessionId, Result<(), ServiceError>) {
        match event {
            WireEvent::OpenScenario {
                session,
                spec,
                scenario,
                n,
                seed,
                horizon,
                slice_budget,
            } => {
                let mut config = SessionConfig {
                    horizon,
                    ..SessionConfig::default()
                };
                if let Some(budget) = slice_budget {
                    config.slice_budget = budget;
                }
                (
                    session,
                    self.manager
                        .open_scenario(session, spec, scenario, n, seed, &config),
                )
            }
            WireEvent::OpenExternal {
                session,
                spec,
                n,
                horizon,
                slice_budget,
                inbox_capacity,
                overflow,
            } => {
                let mut config = SessionConfig {
                    horizon,
                    overflow,
                    ..SessionConfig::default()
                };
                if let Some(budget) = slice_budget {
                    config.slice_budget = budget;
                }
                if let Some(capacity) = inbox_capacity {
                    config.inbox_capacity = capacity;
                }
                (
                    session,
                    self.manager.open_external(session, spec, n, &config),
                )
            }
            WireEvent::Event { session, event } => {
                (session, self.manager.push_event(session, event))
            }
            WireEvent::Close { session } => (session, self.manager.close(session)),
        }
    }

    /// Pumps until the manager is idle: every session finished (result
    /// frames sent) or awaiting external events.
    ///
    /// # Errors
    ///
    /// See [`ServiceEndpoint::pump`].
    pub fn run_until_idle(&mut self) -> Result<(), ServiceError> {
        while self.pump()? > 0 {}
        Ok(())
    }

    /// The underlying manager (for status probes).
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// Mutable access to the underlying manager.
    pub fn manager_mut(&mut self) -> &mut SessionManager {
        &mut self.manager
    }

    /// Tears down the endpoint, returning its manager.
    pub fn into_manager(self) -> SessionManager {
        self.manager
    }
}

/// The tenant side of a connection: typed calls encoded to frames.
#[derive(Debug)]
pub struct ServiceClient<T: Transport> {
    transport: T,
}

impl<T: Transport> ServiceClient<T> {
    /// Wraps a transport into a client.
    pub fn new(transport: T) -> Self {
        ServiceClient { transport }
    }

    /// Requests a scenario-fed session (wire form of
    /// [`SessionManager::open_scenario`](crate::SessionManager::open_scenario)).
    ///
    /// # Errors
    ///
    /// Encode failures ([`WireError::OutOfRange`](crate::WireError::OutOfRange)
    /// for oversized fields) and transport delivery failures; service-side
    /// rejections arrive later as [`WireResult::Error`] frames.
    pub fn open_scenario(
        &mut self,
        session: SessionId,
        spec: AlgorithmSpec,
        scenario: impl Into<FaultedScenario>,
        n: usize,
        seed: u64,
        config: &SessionConfig,
    ) -> Result<(), ServiceError> {
        self.transport.send(&encode_event(&WireEvent::OpenScenario {
            session,
            spec,
            scenario: scenario.into(),
            n,
            seed,
            horizon: config.horizon,
            slice_budget: Some(config.slice_budget),
        })?)
    }

    /// Requests an externally-fed session (wire form of
    /// [`SessionManager::open_external`](crate::SessionManager::open_external)).
    ///
    /// # Errors
    ///
    /// Encode and transport delivery failures (see
    /// [`ServiceClient::open_scenario`]).
    pub fn open_external(
        &mut self,
        session: SessionId,
        spec: AlgorithmSpec,
        n: usize,
        config: &SessionConfig,
    ) -> Result<(), ServiceError> {
        self.transport.send(&encode_event(&WireEvent::OpenExternal {
            session,
            spec,
            n,
            horizon: config.horizon,
            slice_budget: Some(config.slice_budget),
            inbox_capacity: Some(config.inbox_capacity),
            overflow: config.overflow,
        })?)
    }

    /// Feeds one event to an externally-fed session.
    ///
    /// # Errors
    ///
    /// Encode and transport delivery failures; a full inbox under
    /// [`OverflowPolicy::Block`](crate::OverflowPolicy::Block) comes back
    /// as a [`WireResult::Error`] frame.
    pub fn send_event(&mut self, session: SessionId, event: StepEvent) -> Result<(), ServiceError> {
        self.transport
            .send(&encode_event(&WireEvent::Event { session, event })?)
    }

    /// Closes an externally-fed session's feed so it finishes once its
    /// inbox drains.
    ///
    /// # Errors
    ///
    /// Transport delivery failures only.
    pub fn close(&mut self, session: SessionId) -> Result<(), ServiceError> {
        self.transport
            .send(&encode_event(&WireEvent::Close { session })?)
    }

    /// Takes the next service reply, if one has arrived: a completed
    /// session's result or a per-session error.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] if the frame fails to decode.
    pub fn poll_result(&mut self) -> Result<Option<WireResult>, ServiceError> {
        match self.transport.try_recv() {
            None => Ok(None),
            Some(frame) => Ok(Some(decode_result(&frame)?)),
        }
    }

    /// The underlying transport (e.g. to inspect or tear down).
    pub fn into_transport(self) -> T {
        self.transport
    }
}
