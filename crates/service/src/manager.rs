//! The multi-tenant scheduler: thousands of sessions, one worker pool.
//!
//! [`SessionManager`] owns every live [`Session`](crate::session) and
//! steps the runnable ones in *slices* — each slice grants each session
//! up to its per-session interaction budget on a shared pool of worker
//! threads, then parks it again. Completions stream out through
//! [`SessionManager::poll_result`] **as they happen**, not at a join:
//! a finished session is retired from the map (keeping live memory
//! `O(active sessions + n)`) and its result queued immediately, while
//! the rest of the fleet keeps running. Failures are isolated the same
//! way: a session whose feed drives the engine into an invalid state is
//! killed and its error queued for [`SessionManager::poll_failure`] —
//! one tenant's bad input never wedges the scheduler.
//!
//! Determinism: sessions are independent (each owns its engine, RNG
//! stream, and feed), so the worker count and chunking never change any
//! result — only wall-clock time. Results are queued in session-id order
//! within a slice.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use doda_core::sequence::StepEvent;
use doda_sim::{AlgorithmSpec, FaultedScenario, TrialResult};

use crate::error::ServiceError;
use crate::session::{Session, SessionConfig, SessionId, SessionStatus, SliceOutcome};

/// Owns and schedules every live aggregation session.
///
/// See the [module docs](self) for the scheduling model and the crate
/// docs for a quickstart.
#[derive(Debug)]
pub struct SessionManager {
    sessions: BTreeMap<SessionId, Session>,
    completed: VecDeque<(SessionId, TrialResult)>,
    faulted: VecDeque<(SessionId, ServiceError)>,
    shed_total: u64,
    workers: usize,
}

impl Default for SessionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionManager {
    /// A manager whose worker pool matches the machine's parallelism.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::with_workers(workers)
    }

    /// A manager with an explicit worker-pool size (1 = serial). The
    /// worker count never changes results, only wall-clock time.
    pub fn with_workers(workers: usize) -> Self {
        SessionManager {
            sessions: BTreeMap::new(),
            completed: VecDeque::new(),
            faulted: VecDeque::new(),
            shed_total: 0,
            workers: workers.max(1),
        }
    }

    /// Opens a scenario-fed session: `scenario` streams the interactions,
    /// seeded exactly like trial 0 of a
    /// [`Sweep`](doda_sim::Sweep) with the same `(spec, scenario, n,
    /// seed)` — the finished result is byte-identical to that sweep's.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DuplicateSession`] if `id` is taken,
    /// [`ServiceError::UnsupportedSpec`] if `spec` needs knowledge of the
    /// future, [`ServiceError::InvalidScenario`] /
    /// [`ServiceError::FaultConfig`] if the scenario rejects `n`.
    pub fn open_scenario(
        &mut self,
        id: SessionId,
        spec: AlgorithmSpec,
        scenario: impl Into<FaultedScenario>,
        n: usize,
        seed: u64,
        config: &SessionConfig,
    ) -> Result<(), ServiceError> {
        if self.sessions.contains_key(&id) {
            return Err(ServiceError::DuplicateSession(id));
        }
        let session = Session::open_scenario(id, spec, scenario.into(), n, seed, config)?;
        self.sessions.insert(id, session);
        Ok(())
    }

    /// Opens an externally-fed session: the tenant pushes
    /// [`StepEvent`]s via [`SessionManager::push_event`] into a bounded
    /// inbox (capacity and overflow policy from `config`).
    ///
    /// # Errors
    ///
    /// [`ServiceError::DuplicateSession`] if `id` is taken,
    /// [`ServiceError::UnsupportedSpec`] if `spec` needs knowledge of the
    /// future.
    pub fn open_external(
        &mut self,
        id: SessionId,
        spec: AlgorithmSpec,
        n: usize,
        config: &SessionConfig,
    ) -> Result<(), ServiceError> {
        if self.sessions.contains_key(&id) {
            return Err(ServiceError::DuplicateSession(id));
        }
        let session = Session::open_external(id, spec, n, config)?;
        self.sessions.insert(id, session);
        Ok(())
    }

    /// Feeds one event into an externally-fed session's bounded inbox.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] if no such session is live,
    /// [`ServiceError::NotExternallyFed`] if it is scenario-fed,
    /// [`ServiceError::SessionClosed`] if its feed was closed,
    /// [`ServiceError::InvalidEvent`] if the event names a node outside
    /// the session's population or a fault targets the sink, and — when
    /// the inbox is full — [`ServiceError::Backpressure`] under
    /// [`OverflowPolicy::Block`](crate::OverflowPolicy::Block). Under
    /// [`OverflowPolicy::Shed`](crate::OverflowPolicy::Shed) a full inbox
    /// drops the event, counts it, and reports success.
    pub fn push_event(&mut self, id: SessionId, event: StepEvent) -> Result<(), ServiceError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServiceError::UnknownSession(id))?;
        session.push_event(event)
    }

    /// Closes an externally-fed session's feed: it finishes (and reports)
    /// once its inbox drains, instead of idling for more events.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] if no such session is live.
    pub fn close(&mut self, id: SessionId) -> Result<(), ServiceError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServiceError::UnknownSession(id))?;
        session.close();
        Ok(())
    }

    /// Runs one scheduler slice: every runnable session advances by up to
    /// its per-session budget, in parallel over the worker pool. Finished
    /// sessions are retired and their results queued (in session-id
    /// order) for [`SessionManager::poll_result`].
    ///
    /// A session whose slice errors — its event feed drove the engine
    /// into a state it rejects, e.g. a tenant-pushed crash of an
    /// already-dead node — is killed and retired the same way, its error
    /// queued for [`SessionManager::poll_failure`]. One misbehaving
    /// tenant never stalls the scheduler or the other sessions' results.
    ///
    /// Returns the number of sessions that were stepped.
    pub fn run_slice(&mut self) -> usize {
        let mut runnable: Vec<&mut Session> = self
            .sessions
            .values_mut()
            .filter(|s| s.status() == SessionStatus::Runnable)
            .collect();
        let stepped = runnable.len();
        if stepped == 0 {
            return 0;
        }

        // One outcome slot per runnable session, still in session-id
        // order after the parallel phase — the id-ordered retire loop
        // below is what keeps result order worker-count-independent.
        let mut outcomes: Vec<Option<Result<SliceOutcome, ServiceError>>> = Vec::new();
        let workers = self.workers.min(stepped);
        if workers <= 1 {
            outcomes.extend(runnable.iter_mut().map(|s| Some(s.run_slice())));
        } else {
            outcomes.resize_with(stepped, || None);
            let chunk = stepped.div_ceil(workers);
            std::thread::scope(|scope| {
                for (sessions, slots) in runnable.chunks_mut(chunk).zip(outcomes.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (session, slot) in sessions.iter_mut().zip(slots.iter_mut()) {
                            *slot = Some(session.run_slice());
                        }
                    });
                }
            });
        }

        let mut retire = Vec::new();
        for (session, outcome) in runnable.iter().zip(outcomes) {
            match outcome.expect("every runnable session was stepped") {
                Ok(SliceOutcome::Finished(result)) => retire.push((session.id(), Ok(result))),
                Ok(SliceOutcome::Runnable | SliceOutcome::AwaitingEvents) => {}
                Err(error) => retire.push((session.id(), Err(error))),
            }
        }
        for (id, outcome) in retire {
            if let Some(session) = self.sessions.remove(&id) {
                self.shed_total += session.shed_count();
            }
            match outcome {
                Ok(result) => self.completed.push_back((id, result)),
                // Attribute the engine's rejection to the session whose
                // feed caused it; the session is gone, the fleet is not.
                Err(ServiceError::Engine(cause)) => self
                    .faulted
                    .push_back((id, ServiceError::SessionFault { session: id, cause })),
                Err(error) => self.faulted.push_back((id, error)),
            }
        }
        stepped
    }

    /// Runs scheduler slices until no session is runnable (all finished,
    /// killed, or awaiting external events).
    pub fn run_until_idle(&mut self) {
        while self.run_slice() > 0 {}
    }

    /// Pops the next completed session's result, in completion order.
    /// Results stream out as sessions finish — polling mid-run is the
    /// intended use, not just at the end.
    pub fn poll_result(&mut self) -> Option<(SessionId, TrialResult)> {
        self.completed.pop_front()
    }

    /// Pops the next killed session's error, in kill order. A session
    /// lands here when its slice errored (see
    /// [`SessionManager::run_slice`]); by the time its error is polled
    /// the session is already retired.
    pub fn poll_failure(&mut self) -> Option<(SessionId, ServiceError)> {
        self.faulted.pop_front()
    }

    /// `true` when no session is runnable: every remaining session is
    /// waiting on external events (or the manager is empty).
    pub fn is_idle(&self) -> bool {
        self.sessions
            .values()
            .all(|s| s.status() != SessionStatus::Runnable)
    }

    /// Number of live (unfinished) sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Number of queued completed results not yet polled.
    pub fn pending_results(&self) -> usize {
        self.completed.len()
    }

    /// Number of queued killed-session errors not yet polled.
    pub fn pending_failures(&self) -> usize {
        self.faulted.len()
    }

    /// The session's lifecycle status, or `None` once it finished (its
    /// result is in the completion queue) or was never opened.
    pub fn status(&self, id: SessionId) -> Option<SessionStatus> {
        self.sessions.get(&id).map(|s| s.status())
    }

    /// Current inbox length of an externally-fed session (0 for
    /// scenario-fed ones).
    pub fn inbox_len(&self, id: SessionId) -> Option<usize> {
        self.sessions.get(&id).map(|s| s.inbox_len())
    }

    /// Highest inbox length the session ever reached — the observable
    /// bound witness: never exceeds the configured capacity.
    pub fn inbox_high_water(&self, id: SessionId) -> Option<usize> {
        self.sessions.get(&id).map(|s| s.inbox_high_water())
    }

    /// Events shed so far by one live session's full inbox under
    /// [`OverflowPolicy::Shed`](crate::OverflowPolicy::Shed).
    pub fn session_shed_count(&self, id: SessionId) -> Option<u64> {
        self.sessions.get(&id).map(|s| s.shed_count())
    }

    /// Total events shed across all sessions, including retired ones.
    pub fn shed_count(&self) -> u64 {
        self.shed_total + self.sessions.values().map(|s| s.shed_count()).sum::<u64>()
    }

    /// The worker-pool size slices run on.
    pub fn workers(&self) -> usize {
        self.workers
    }
}
