//! Uniform random contacts — the paper's randomized adversary as a workload.

use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, InteractionSource, Time};
use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

use crate::Workload;

/// Uniformly random pairwise contacts over `n` nodes: every pair occurs
/// with probability `2 / (n(n−1))` at every time step, exactly the
/// randomized adversary of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformWorkload {
    n: usize,
}

impl UniformWorkload {
    /// Creates the workload over `n ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        UniformWorkload { n }
    }
}

impl Workload for UniformWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "uniform"
    }

    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send> {
        Box::new(UniformSource {
            n: self.n,
            rng: seeded_rng(seed),
        })
    }
}

/// Streaming source behind [`UniformWorkload`]: one uniform pair per step.
#[derive(Debug, Clone)]
pub struct UniformSource {
    n: usize,
    rng: DodaRng,
}

impl InteractionSource for UniformSource {
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        let a = self.rng.gen_range(0..self.n);
        let mut b = self.rng.gen_range(0..self.n - 1);
        if b >= a {
            b += 1;
        }
        Some(Interaction::new(NodeId(a), NodeId(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length_and_valid_pairs() {
        let w = UniformWorkload::new(6);
        let seq = w.generate(1000, 3);
        assert_eq!(seq.len(), 1000);
        for ti in seq.iter() {
            assert!(ti.interaction.max().index() < 6);
        }
    }

    #[test]
    fn underlying_graph_becomes_complete_quickly() {
        let w = UniformWorkload::new(6);
        let seq = w.generate(500, 9);
        assert!(seq.underlying_graph().is_complete());
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_single_node() {
        let _ = UniformWorkload::new(1);
    }
}
