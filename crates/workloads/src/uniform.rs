//! Uniform random contacts — the paper's randomized adversary as a workload.

use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, InteractionSource, Time};
use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::{Rng, RngCore};

use crate::Workload;

/// Uniformly random pairwise contacts over `n` nodes: every pair occurs
/// with probability `2 / (n(n−1))` at every time step, exactly the
/// randomized adversary of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformWorkload {
    n: usize,
}

impl UniformWorkload {
    /// Creates the workload over `n ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        UniformWorkload { n }
    }
}

impl Workload for UniformWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "uniform"
    }

    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send> {
        Box::new(UniformSource {
            n: self.n,
            rng: seeded_rng(seed),
        })
    }
}

/// Streaming source behind [`UniformWorkload`]: one uniform pair per step.
#[derive(Debug, Clone)]
pub struct UniformSource {
    n: usize,
    rng: DodaRng,
}

impl InteractionSource for UniformSource {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        let a = self.rng.gen_range(0..self.n);
        let mut b = self.rng.gen_range(0..self.n - 1);
        if b >= a {
            b += 1;
        }
        Some(Interaction::new(NodeId(a), NodeId(b)))
    }

    // Hand-batched fast path for the lane engine. Draws the exact same RNG
    // stream and applies the exact same pair mapping as `next_interaction`,
    // but sidesteps the costs that only matter at lane throughput: the
    // sized `extend` reserves once instead of growth-checking every push,
    // and sorting the endpoints before `Interaction::new` turns its
    // normalisation branch (50/50 on random pairs, so mispredicted half
    // the time) into two branch-free min/max moves plus an always-taken
    // compare. `tests/lane_equivalence.rs` pins the per-step/batched match.
    fn next_interaction_batch(
        &mut self,
        _t0: Time,
        _view: &AdversaryView<'_>,
        out: &mut Vec<Interaction>,
        max: usize,
    ) {
        let n = self.n as u64;
        let rng = &mut self.rng;
        out.extend((0..max).map(|_| {
            let a = rng.next_u64() % n;
            let raw = rng.next_u64() % (n - 1);
            let b = raw + u64::from(raw >= a);
            let lo = a.min(b) as usize;
            let hi = a.max(b) as usize;
            Interaction::new(NodeId(lo), NodeId(hi))
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length_and_valid_pairs() {
        let w = UniformWorkload::new(6);
        let seq = w.generate(1000, 3);
        assert_eq!(seq.len(), 1000);
        for ti in seq.iter() {
            assert!(ti.interaction.max().index() < 6);
        }
    }

    #[test]
    fn underlying_graph_becomes_complete_quickly() {
        let w = UniformWorkload::new(6);
        let seq = w.generate(500, 9);
        assert!(seq.underlying_graph().is_complete());
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_single_node() {
        let _ = UniformWorkload::new(1);
    }
}
