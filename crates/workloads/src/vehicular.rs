//! Vehicular ad-hoc contacts.
//!
//! The paper's introduction also motivates the problem with "cars evolving
//! in a city that communicate with each other in an ad hoc manner". This
//! workload is the synthetic stand-in: vehicles perform independent random
//! walks over a grid of road cells and two vehicles can interact only when
//! they occupy the same cell — producing the bursty, spatially correlated
//! contact pattern characteristic of vehicular traces (repeated contacts
//! while driving alongside, long silences otherwise).

use std::collections::VecDeque;

use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, InteractionSource, Time};
use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

use crate::Workload;

/// Random-waypoint-style contacts on a `grid_side × grid_side` cell grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VehicularWorkload {
    n: usize,
    grid_side: usize,
}

impl VehicularWorkload {
    /// Creates the workload: `n ≥ 2` vehicles on a `grid_side ≥ 1` grid.
    ///
    /// Small grids produce dense contact graphs (many co-located vehicles);
    /// large grids produce sparse, bursty contacts.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `grid_side == 0`.
    pub fn new(n: usize, grid_side: usize) -> Self {
        assert!(n >= 2, "need at least 2 vehicles, got {n}");
        assert!(grid_side >= 1, "the grid needs at least one cell");
        VehicularWorkload { n, grid_side }
    }

    fn step_position(&self, pos: (usize, usize), rng: &mut DodaRng) -> (usize, usize) {
        let (mut x, mut y) = pos;
        match rng.gen_range(0..4) {
            0 => x = (x + 1).min(self.grid_side - 1),
            1 => x = x.saturating_sub(1),
            2 => y = (y + 1).min(self.grid_side - 1),
            _ => y = y.saturating_sub(1),
        }
        (x, y)
    }
}

impl Workload for VehicularWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "vehicular"
    }

    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send> {
        let mut rng = seeded_rng(seed);
        let positions: Vec<(usize, usize)> = (0..self.n)
            .map(|_| {
                (
                    rng.gen_range(0..self.grid_side),
                    rng.gen_range(0..self.grid_side),
                )
            })
            .collect();
        Box::new(VehicularSource {
            workload: *self,
            positions,
            pending: VecDeque::new(),
            rng,
        })
    }
}

/// Streaming source behind [`VehicularWorkload`].
///
/// Each mobility round produces a *burst* of co-located pairs; the source
/// buffers the current round's burst (bounded by `n²/4` pairs, independent
/// of the horizon) and emits it one interaction per step before simulating
/// the next round.
#[derive(Debug, Clone)]
pub struct VehicularSource {
    workload: VehicularWorkload,
    positions: Vec<(usize, usize)>,
    pending: VecDeque<Interaction>,
    rng: DodaRng,
}

impl InteractionSource for VehicularSource {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.workload.n
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        if let Some(i) = self.pending.pop_front() {
            return Some(i);
        }
        let n = self.workload.n;
        // Move every vehicle one step.
        for pos in self.positions.iter_mut() {
            *pos = self.workload.step_position(*pos, &mut self.rng);
        }
        // Collect co-located pairs; they are emitted one per time step, in
        // a random order.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.positions[a] == self.positions[b] {
                    pairs.push((a, b));
                }
            }
        }
        // Fisher-Yates shuffle for an unbiased emission order.
        for i in (1..pairs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            pairs.swap(i, j);
        }
        if pairs.is_empty() {
            // Nobody is co-located this round: emit one random "roadside
            // unit" style long-range contact so the stream keeps the
            // one-interaction-per-step structure of the model.
            let a = self.rng.gen_range(0..n);
            let mut b = self.rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            return Some(Interaction::new(NodeId(a), NodeId(b)));
        }
        self.pending.extend(
            pairs
                .iter()
                .map(|&(a, b)| Interaction::new(NodeId(a), NodeId(b))),
        );
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exactly_len_interactions() {
        let w = VehicularWorkload::new(10, 4);
        let seq = w.generate(777, 5);
        assert_eq!(seq.len(), 777);
        for ti in seq.iter() {
            assert!(ti.interaction.max().index() < 10);
        }
    }

    #[test]
    fn dense_grid_gives_bursty_repeated_contacts() {
        // On a 2x2 grid with 12 vehicles, co-location is frequent, so the
        // same pair should appear many times (contact bursts).
        let w = VehicularWorkload::new(12, 2);
        let seq = w.generate(3_000, 1);
        let mut max_repeats = 0usize;
        let g = seq.underlying_graph();
        for e in g.edges() {
            let repeats = seq.meeting_times(e.a, e.b).len();
            max_repeats = max_repeats.max(repeats);
        }
        assert!(
            max_repeats > 10,
            "expected bursty contacts, max repeats = {max_repeats}"
        );
    }

    #[test]
    fn sparse_grid_still_produces_valid_sequences() {
        let w = VehicularWorkload::new(4, 16);
        let seq = w.generate(300, 9);
        assert_eq!(seq.len(), 300);
    }

    #[test]
    #[should_panic(expected = "at least 2 vehicles")]
    fn rejects_single_vehicle() {
        let _ = VehicularWorkload::new(1, 4);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn rejects_empty_grid() {
        let _ = VehicularWorkload::new(4, 0);
    }
}
