//! Tree-restricted sequences.
//!
//! Theorem 5 states that the spanning-tree algorithm is *optimal* when the
//! underlying graph is a tree. This workload produces sequences whose
//! interactions are confined to the edges of a tree (given or randomly
//! generated from the seed), each edge recurring throughout the sequence in
//! a random order.

use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, InteractionSource, Time};
use doda_graph::{generators, AdjacencyGraph, NodeId};
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

use crate::Workload;

/// Interactions restricted to the edges of a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeRestrictedWorkload {
    n: usize,
    /// `None`: generate a fresh random tree from the seed at `generate`
    /// time; `Some`: always use this fixed tree.
    tree: Option<AdjacencyGraph>,
}

impl TreeRestrictedWorkload {
    /// Sequences over a random tree derived from the generation seed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn random_tree(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        TreeRestrictedWorkload { n, tree: None }
    }

    /// Sequences over a fixed tree.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not a tree (connected with exactly `n − 1` edges).
    pub fn from_tree(tree: AdjacencyGraph) -> Self {
        let n = tree.node_count();
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        assert!(
            tree.edge_count() == n - 1 && doda_graph::traversal::is_connected(&tree),
            "the provided graph is not a tree"
        );
        TreeRestrictedWorkload {
            n,
            tree: Some(tree),
        }
    }

    /// The tree used for a given seed (the fixed one, or the seed-derived one).
    pub fn tree_for_seed(&self, seed: u64) -> AdjacencyGraph {
        match &self.tree {
            Some(t) => t.clone(),
            None => {
                let mut rng = seeded_rng(seed ^ TREE_SEED_MARKER);
                generators::random_tree_graph(self.n, &mut rng)
            }
        }
    }
}

/// A fixed marker mixed into the seed so the tree shape and the interaction
/// order are driven by independent random streams.
const TREE_SEED_MARKER: u64 = 0x5EED_7AEE_0000_0001;

impl Workload for TreeRestrictedWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "tree-restricted"
    }

    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send> {
        let tree = self.tree_for_seed(seed);
        Box::new(TreeRestrictedSource {
            n: self.n,
            edges: tree.edges().map(|e| (e.a, e.b)).collect(),
            rng: seeded_rng(seed),
        })
    }
}

/// Streaming source behind [`TreeRestrictedWorkload`]: a uniformly random
/// tree edge per step.
#[derive(Debug, Clone)]
pub struct TreeRestrictedSource {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    rng: DodaRng,
}

impl InteractionSource for TreeRestrictedSource {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        let (a, b) = self.edges[self.rng.gen_range(0..self.edges.len())];
        Some(Interaction::new(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactions_stay_on_the_tree() {
        let w = TreeRestrictedWorkload::random_tree(12);
        let seed = 9;
        let tree = w.tree_for_seed(seed);
        let seq = w.generate(2_000, seed);
        for ti in seq.iter() {
            assert!(tree.has_edge(ti.interaction.min(), ti.interaction.max()));
        }
        // Underlying graph is (a subgraph of) the tree and, with 2000 draws
        // over at most 11 edges, almost surely the whole tree.
        assert_eq!(seq.underlying_graph().edge_count(), 11);
    }

    #[test]
    fn fixed_tree_is_respected_regardless_of_seed() {
        let path = generators::path_graph(6);
        let w = TreeRestrictedWorkload::from_tree(path.clone());
        for seed in [1u64, 2, 3] {
            let seq = w.generate(500, seed);
            for ti in seq.iter() {
                assert!(path.has_edge(ti.interaction.min(), ti.interaction.max()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a tree")]
    fn rejects_non_trees() {
        let _ = TreeRestrictedWorkload::from_tree(generators::cycle_graph(4));
    }

    #[test]
    fn different_seeds_give_different_trees() {
        let w = TreeRestrictedWorkload::random_tree(10);
        let t1 = w.tree_for_seed(1);
        let t2 = w.tree_for_seed(2);
        assert_ne!(t1, t2);
    }
}
