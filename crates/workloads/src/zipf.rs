//! Zipf-popularity contacts.

use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, InteractionSource, Time};
use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

use crate::Workload;

/// Contacts where node popularity follows a Zipf law: node `i` participates
/// with weight `1 / (i+1)^s`. Models hub-and-spoke contact patterns (a few
/// very social nodes) and is the natural "non-uniform randomized adversary"
/// asked about in the paper's conclusion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfWorkload {
    n: usize,
    exponent: f64,
}

impl ZipfWorkload {
    /// Creates the workload over `n ≥ 2` nodes with Zipf exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the exponent is negative / non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be finite and non-negative, got {exponent}"
        );
        ZipfWorkload { n, exponent }
    }

    fn cumulative_weights(&self) -> Vec<f64> {
        let mut acc = 0.0;
        (0..self.n)
            .map(|i| {
                acc += 1.0 / ((i + 1) as f64).powf(self.exponent);
                acc
            })
            .collect()
    }
}

impl Workload for ZipfWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "zipf"
    }

    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send> {
        Box::new(ZipfSource {
            cumulative: self.cumulative_weights(),
            rng: seeded_rng(seed),
        })
    }
}

/// Streaming source behind [`ZipfWorkload`]: both endpoints drawn from the
/// Zipf popularity distribution, redrawing the second until distinct.
#[derive(Debug, Clone)]
pub struct ZipfSource {
    cumulative: Vec<f64>,
    rng: DodaRng,
}

impl ZipfSource {
    fn draw_node(&mut self) -> NodeId {
        let total = *self.cumulative.last().expect("n >= 2");
        let x: f64 = self.rng.gen_range(0.0..total);
        NodeId(
            self.cumulative
                .partition_point(|&c| c <= x)
                .min(self.cumulative.len() - 1),
        )
    }
}

impl InteractionSource for ZipfSource {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.cumulative.len()
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        let a = self.draw_node();
        let b = loop {
            let candidate = self.draw_node();
            if candidate != a {
                break candidate;
            }
        };
        Some(Interaction::new(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_zero_is_uniform_like() {
        let w = ZipfWorkload::new(5, 0.0);
        let seq = w.generate(20_000, 1);
        let mut counts = vec![0usize; 5];
        for ti in seq.iter() {
            counts[ti.interaction.min().index()] += 1;
            counts[ti.interaction.max().index()] += 1;
        }
        let expected = 2.0 * 20_000.0 / 5.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.1);
        }
    }

    #[test]
    fn high_exponent_concentrates_on_low_ids() {
        let w = ZipfWorkload::new(10, 2.0);
        let seq = w.generate(10_000, 2);
        let node0: usize = seq
            .iter()
            .filter(|ti| ti.interaction.involves(NodeId(0)))
            .count();
        let node9: usize = seq
            .iter()
            .filter(|ti| ti.interaction.involves(NodeId(9)))
            .count();
        assert!(node0 > 10 * node9.max(1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_exponent() {
        let _ = ZipfWorkload::new(4, -1.0);
    }
}
