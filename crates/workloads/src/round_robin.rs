//! Recurring-edge (round-robin) sequences.
//!
//! Theorem 4 assumes that "the interactions occurring at least once, occur
//! infinitely often". The round-robin workload realises that assumption on
//! a finite horizon: a fixed list of pairs (by default all pairs of the
//! complete graph) is replayed cyclically, so every edge of the underlying
//! graph recurs every `|edges|` steps.

use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, InteractionSource, Time};
use doda_graph::{AdjacencyGraph, NodeId};

use crate::Workload;

/// Deterministic cyclic replay of a fixed edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobinWorkload {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl RoundRobinWorkload {
    /// Round-robin over all pairs of `n ≥ 2` nodes (complete underlying graph).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn all_pairs(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((NodeId(a), NodeId(b)));
            }
        }
        RoundRobinWorkload { n, edges }
    }

    /// Round-robin over the edges of an arbitrary graph, in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    pub fn from_graph(graph: &AdjacencyGraph) -> Self {
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|e| (e.a, e.b)).collect();
        assert!(!edges.is_empty(), "the graph must have at least one edge");
        RoundRobinWorkload {
            n: graph.node_count(),
            edges,
        }
    }

    /// The replayed edge list.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }
}

impl Workload for RoundRobinWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "round-robin"
    }

    fn source(&self, _seed: u64) -> Box<dyn InteractionSource + Send> {
        Box::new(RoundRobinSource {
            n: self.n,
            edges: self.edges.clone(),
            cursor: 0,
        })
    }
}

/// Streaming source behind [`RoundRobinWorkload`]: replays the edge list
/// cyclically forever (every edge recurs infinitely often — the Theorem 4
/// assumption).
#[derive(Debug, Clone)]
pub struct RoundRobinSource {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    cursor: usize,
}

impl InteractionSource for RoundRobinSource {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        let (a, b) = self.edges[self.cursor];
        self.cursor = (self.cursor + 1) % self.edges.len();
        Some(Interaction::new(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_graph::generators;

    #[test]
    fn all_pairs_cycle_covers_complete_graph() {
        let w = RoundRobinWorkload::all_pairs(5);
        assert_eq!(w.edges().len(), 10);
        let seq = w.generate(10, 0);
        assert!(seq.underlying_graph().is_complete());
    }

    #[test]
    fn every_edge_recurs() {
        let w = RoundRobinWorkload::all_pairs(4);
        let seq = w.generate(18, 0); // 3 full cycles of 6 edges
        for e in seq.underlying_graph().edges() {
            assert_eq!(seq.meeting_times(e.a, e.b).len(), 3);
        }
    }

    #[test]
    fn from_graph_respects_topology() {
        let cycle = generators::cycle_graph(5);
        let w = RoundRobinWorkload::from_graph(&cycle);
        let seq = w.generate(50, 0);
        let g = seq.underlying_graph();
        assert_eq!(g.edge_count(), 5);
        for e in g.edges() {
            assert!(cycle.has_edge(e.a, e.b));
        }
    }

    #[test]
    fn seed_is_irrelevant() {
        let w = RoundRobinWorkload::all_pairs(4);
        assert_eq!(w.generate(20, 1), w.generate(20, 2));
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn rejects_edgeless_graph() {
        let _ = RoundRobinWorkload::from_graph(&AdjacencyGraph::new(3));
    }
}
