//! Community-structured contacts.

use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, InteractionSource, Time};
use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

use crate::Workload;

/// Contacts with community structure: nodes are split into `k` equal-sized
/// communities; with probability `p_intra` an interaction is drawn inside a
/// (uniformly chosen) community, otherwise between two different
/// communities. Models clustered human/vehicle mobility where most contacts
/// are local and rare "bridge" contacts carry data across clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityWorkload {
    n: usize,
    communities: usize,
    p_intra: f64,
}

impl CommunityWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, if `communities` is 0 or larger than `n / 2`
    /// (every community needs at least two members so intra-community pairs
    /// exist), or if `p_intra` is outside `[0, 1]`.
    pub fn new(n: usize, communities: usize, p_intra: f64) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        assert!(
            communities >= 1 && communities <= n / 2,
            "communities must be in 1..={} for n={n}, got {communities}",
            n / 2
        );
        assert!(
            (0.0..=1.0).contains(&p_intra),
            "p_intra={p_intra} must be in [0, 1]"
        );
        CommunityWorkload {
            n,
            communities,
            p_intra,
        }
    }

    /// The community of a node (round-robin assignment by id).
    pub fn community_of(&self, v: NodeId) -> usize {
        v.index() % self.communities
    }

    /// Members of community `c`, in increasing id order.
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        (0..self.n)
            .filter(|i| i % self.communities == c)
            .map(NodeId)
            .collect()
    }
}

impl Workload for CommunityWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "community"
    }

    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send> {
        Box::new(CommunitySource {
            n: self.n,
            communities: self.communities,
            p_intra: self.p_intra,
            members: (0..self.communities).map(|c| self.members(c)).collect(),
            rng: seeded_rng(seed),
        })
    }
}

/// Streaming source behind [`CommunityWorkload`]: intra-community contact
/// with probability `p_intra`, bridge contact otherwise.
#[derive(Debug, Clone)]
pub struct CommunitySource {
    n: usize,
    communities: usize,
    p_intra: f64,
    members: Vec<Vec<NodeId>>,
    rng: DodaRng,
}

impl InteractionSource for CommunitySource {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        let rng = &mut self.rng;
        let members = &self.members;
        let interaction = if rng.gen_bool(self.p_intra) {
            // Intra-community contact.
            let c = rng.gen_range(0..self.communities);
            let group = &members[c];
            let a = group[rng.gen_range(0..group.len())];
            let b = loop {
                let candidate = group[rng.gen_range(0..group.len())];
                if candidate != a {
                    break candidate;
                }
            };
            Interaction::new(a, b)
        } else {
            // Bridge contact between two distinct communities.
            let c1 = rng.gen_range(0..self.communities);
            let c2 = if self.communities == 1 {
                c1
            } else {
                loop {
                    let candidate = rng.gen_range(0..self.communities);
                    if candidate != c1 {
                        break candidate;
                    }
                }
            };
            let a = members[c1][rng.gen_range(0..members[c1].len())];
            let b = loop {
                let candidate = members[c2][rng.gen_range(0..members[c2].len())];
                if candidate != a {
                    break candidate;
                }
            };
            Interaction::new(a, b)
        };
        Some(interaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_partitions_nodes() {
        let w = CommunityWorkload::new(10, 3, 0.8);
        let mut all: Vec<NodeId> = (0..3).flat_map(|c| w.members(c)).collect();
        all.sort();
        assert_eq!(all.len(), 10);
        assert_eq!(w.community_of(NodeId(4)), 1);
    }

    #[test]
    fn intra_fraction_matches_probability() {
        let w = CommunityWorkload::new(12, 3, 0.9);
        let seq = w.generate(20_000, 5);
        let intra = seq
            .iter()
            .filter(|ti| {
                w.community_of(ti.interaction.min()) == w.community_of(ti.interaction.max())
            })
            .count();
        let fraction = intra as f64 / seq.len() as f64;
        assert!((fraction - 0.9).abs() < 0.03, "intra fraction {fraction}");
    }

    #[test]
    fn single_community_is_all_intra() {
        let w = CommunityWorkload::new(6, 1, 0.2);
        let seq = w.generate(1000, 1);
        assert_eq!(seq.len(), 1000);
        // With one community every contact is intra by definition; just check
        // validity of the pairs.
        for ti in seq.iter() {
            assert!(ti.interaction.max().index() < 6);
        }
    }

    #[test]
    #[should_panic(expected = "communities must be in")]
    fn rejects_too_many_communities() {
        let _ = CommunityWorkload::new(6, 4, 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_bad_probability() {
        let _ = CommunityWorkload::new(6, 2, 1.5);
    }
}
