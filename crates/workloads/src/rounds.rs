//! Round workloads: generators of synchronous-round streams.
//!
//! The pairwise [`Workload`](crate::Workload) generators model the paper's
//! one-interaction-per-step adversary; the [`RoundWorkload`] generators
//! here model the *synchronous rounds* of the broader dynamic-graph
//! literature, in which a whole matching of disjoint edges is live at
//! once. Three families are provided:
//!
//! * [`RandomMatchingWorkload`] — each round is a uniformly random
//!   (near-perfect) matching, the round-model analogue of the uniform
//!   randomized adversary;
//! * [`TournamentWorkload`] — the deterministic round-robin tournament
//!   (circle method): every pair meets exactly once per `n − 1` rounds,
//!   each round a perfect matching;
//! * [`IntervalConnectedWorkload`] — a `T`-interval-connected evolving
//!   graph: a random Hamiltonian path is held stable for `T` rounds (one
//!   connected spanning subgraph underlying every round of the window),
//!   and each round schedules alternating path edges, so every edge of
//!   the stable path is live within any two consecutive rounds;
//! * [`TorusContactWorkload`] — a CSR-backed contact process on a torus
//!   grid: the sparse underlying graph (`O(n)` edges) is built **once**
//!   into a [`CsrGraph`], and each round greedily matches the edges that
//!   happen to be active, in `O(n)` work and memory per round — the
//!   large-n round generator (nothing it does ever materialises
//!   `O(n · horizon)` state).
//!
//! Like the pairwise workloads, every generator is deterministic per seed
//! and resets itself when asked for round 0, so one source instance can be
//! reused across executions.

use doda_core::round::{Matching, RoundSource};
use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, Time};
use doda_graph::{CsrGraph, Edge, NodeId};
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

/// A generator of synchronous-round streams — the round-model counterpart
/// of [`crate::Workload`].
pub trait RoundWorkload {
    /// Number of nodes in the generated dynamic graphs.
    fn node_count(&self) -> usize;

    /// A short, human-readable name used in reports and benchmark labels.
    fn name(&self) -> &str;

    /// A seeded, infinite [`RoundSource`] over this workload's round
    /// stream. Determinism contract: the same seed always yields the same
    /// sequence of matchings.
    fn rounds(&self, seed: u64) -> Box<dyn RoundSource + Send>;
}

/// Fisher–Yates shuffle of `perm` driven by the workload RNG (`rand`'s
/// `SliceRandom` is not available in the offline vendored subset).
fn shuffle(perm: &mut [NodeId], rng: &mut DodaRng) {
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
}

/// Each round, a uniformly random near-perfect matching: a seeded shuffle
/// of the nodes paired consecutively, covering `⌊n/2⌋` pairs (every node
/// but at most one is matched every round).
///
/// This is the round-model analogue of the uniform randomized adversary:
/// contacts are symmetric, memoryless across rounds, and every pair is
/// equally likely to be matched in a given round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomMatchingWorkload {
    n: usize,
}

impl RandomMatchingWorkload {
    /// Creates the workload over `n ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        RandomMatchingWorkload { n }
    }
}

impl RoundWorkload for RandomMatchingWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "random-matching"
    }

    fn rounds(&self, seed: u64) -> Box<dyn RoundSource + Send> {
        Box::new(RandomMatchingRounds {
            n: self.n,
            seed,
            rng: seeded_rng(seed),
            perm: (0..self.n).map(NodeId).collect(),
        })
    }
}

/// Streaming source behind [`RandomMatchingWorkload`].
#[derive(Debug, Clone)]
pub struct RandomMatchingRounds {
    n: usize,
    seed: u64,
    rng: DodaRng,
    perm: Vec<NodeId>,
}

impl RoundSource for RandomMatchingRounds {
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_round(&mut self, round: Time, _view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        if round == 0 {
            // A fresh execution must replay the same matchings: both the
            // RNG and the permutation the shuffles evolve start over.
            self.rng = seeded_rng(self.seed);
            for (i, slot) in self.perm.iter_mut().enumerate() {
                *slot = NodeId(i);
            }
        }
        shuffle(&mut self.perm, &mut self.rng);
        for pair in self.perm.chunks_exact(2) {
            out.push(Interaction::new(pair[0], pair[1]));
        }
        true
    }
}

/// The round-robin tournament (circle method): node 0 stays fixed while
/// the others rotate one position per round, so every pair meets exactly
/// once per cycle of `m − 1` rounds (`m` = `n` rounded up to even; with
/// odd `n` one node sits the round out). Deterministic — the seed is
/// ignored — and each round is a perfect matching of the `m` slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentWorkload {
    n: usize,
}

impl TournamentWorkload {
    /// Creates the workload over `n ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        TournamentWorkload { n }
    }

    /// Number of rounds per full cycle (every pair met once).
    pub fn cycle_len(&self) -> usize {
        let m = self.n + self.n % 2;
        m - 1
    }
}

impl RoundWorkload for TournamentWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "tournament"
    }

    fn rounds(&self, _seed: u64) -> Box<dyn RoundSource + Send> {
        Box::new(TournamentRounds { n: self.n })
    }
}

/// Streaming source behind [`TournamentWorkload`].
#[derive(Debug, Clone, Copy)]
pub struct TournamentRounds {
    n: usize,
}

impl RoundSource for TournamentRounds {
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_round(&mut self, round: Time, _view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        // Circle method over m slots (m even): slot 0 is pinned; slot
        // k ∈ [1, m) holds node 1 + (k - 1 + r) % (m - 1). Pair slot 0
        // with slot m-1-? … the standard pairing is (0, m-1), (1, m-2), …
        // over the rotated ring. With odd n, the dummy slot m-1 makes its
        // partner sit the round out.
        let m = self.n + self.n % 2;
        let r = (round as usize) % (m - 1);
        let node_at = |slot: usize| -> usize {
            if slot == 0 {
                0
            } else {
                1 + (slot - 1 + r) % (m - 1)
            }
        };
        for k in 0..m / 2 {
            let (a, b) = (node_at(k), node_at(m - 1 - k));
            // With odd n the highest slot value is the dummy node `n`.
            if a < self.n && b < self.n {
                out.push(Interaction::new(NodeId(a), NodeId(b)));
            }
        }
        true
    }
}

/// A `T`-interval-connected evolving graph, served as rounds.
///
/// Every `t` rounds a fresh random Hamiltonian path over the nodes is
/// drawn and held stable for the whole window — the round-model rendering
/// of `T`-interval connectivity: each individual round is only a matching
/// (never connected), but one connected spanning subgraph (the path)
/// underlies every round of the window, and the union of any two
/// consecutive rounds within it restores the entire path. Round `r`
/// schedules the path's even-indexed edges (`r` even) or odd-indexed
/// edges (`r` odd); alternating edges of a path are vertex-disjoint, so
/// each round is a matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalConnectedWorkload {
    n: usize,
    t: usize,
}

impl IntervalConnectedWorkload {
    /// Creates the workload over `n ≥ 2` nodes with stability window
    /// `t ≥ 2` (a one-round window could never expose both edge
    /// parities of the stable path, so the path would not recur).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `t < 2`.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        assert!(t >= 2, "the stability window must be at least 2 rounds");
        IntervalConnectedWorkload { n, t }
    }

    /// The stability window `T`.
    pub fn window(&self) -> usize {
        self.t
    }
}

impl RoundWorkload for IntervalConnectedWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "interval-connected"
    }

    fn rounds(&self, seed: u64) -> Box<dyn RoundSource + Send> {
        Box::new(IntervalConnectedRounds {
            n: self.n,
            t: self.t,
            seed,
            rng: seeded_rng(seed),
            path: (0..self.n).map(NodeId).collect(),
        })
    }
}

/// Streaming source behind [`IntervalConnectedWorkload`].
#[derive(Debug, Clone)]
pub struct IntervalConnectedRounds {
    n: usize,
    t: usize,
    seed: u64,
    rng: DodaRng,
    path: Vec<NodeId>,
}

impl RoundSource for IntervalConnectedRounds {
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_round(&mut self, round: Time, _view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        if round == 0 {
            self.rng = seeded_rng(self.seed);
            for (i, slot) in self.path.iter_mut().enumerate() {
                *slot = NodeId(i);
            }
        }
        if (round as usize) % self.t == 0 {
            // Window boundary: draw the next stable Hamiltonian path.
            shuffle(&mut self.path, &mut self.rng);
        }
        let parity = (round as usize) % 2;
        for i in (parity..self.n - 1).step_by(2) {
            out.push(Interaction::new(self.path[i], self.path[i + 1]));
        }
        true
    }
}

/// A CSR-backed contact process on a `⌈√n⌉ × ⌈√n⌉` torus grid.
///
/// The underlying graph is fixed and sparse — every node is wired to its
/// right and down torus neighbours (grid cells beyond `n − 1` are simply
/// absent), giving `O(n)` edges — and is compiled **once** per source
/// into a [`CsrGraph`]. Each round, every edge is independently *active*
/// with probability 1/2 (seeded, memoryless across rounds like the
/// uniform adversary), and the round's matching is the greedy maximal
/// matching over the active edges in CSR order. Per round that is one
/// `O(n)` pass with an `O(n)` scratch bitmap: the workload streams
/// indefinitely without ever holding more than the graph itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TorusContactWorkload {
    n: usize,
}

impl TorusContactWorkload {
    /// The per-round probability that an edge of the torus is active.
    pub const ACTIVATION: f64 = 0.5;

    /// Creates the workload over `n ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes, got {n}");
        TorusContactWorkload { n }
    }

    /// The torus side length `⌈√n⌉`.
    pub fn side(&self) -> usize {
        (self.n as f64).sqrt().ceil() as usize
    }

    /// Compiles the underlying torus into a CSR graph: right and down
    /// neighbours per cell, wrap-around included, cells `≥ n` skipped,
    /// duplicates (a side-2 torus wraps onto itself) collapsed by the
    /// CSR constructor.
    fn compile(&self) -> CsrGraph {
        let side = self.side();
        let mut edges = Vec::with_capacity(2 * self.n);
        for i in 0..self.n {
            let (r, c) = (i / side, i % side);
            for j in [r * side + (c + 1) % side, ((r + 1) % side) * side + c] {
                if j < self.n && j != i {
                    edges.push(Edge::new(NodeId(i), NodeId(j)));
                }
            }
        }
        CsrGraph::from_edges(self.n, edges)
    }
}

impl RoundWorkload for TorusContactWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "torus-contact"
    }

    fn rounds(&self, seed: u64) -> Box<dyn RoundSource + Send> {
        Box::new(TorusContactRounds {
            csr: self.compile(),
            seed,
            rng: seeded_rng(seed),
        })
    }
}

/// Streaming source behind [`TorusContactWorkload`].
#[derive(Debug, Clone)]
pub struct TorusContactRounds {
    csr: CsrGraph,
    seed: u64,
    rng: DodaRng,
}

impl RoundSource for TorusContactRounds {
    fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    fn next_round(&mut self, round: Time, _view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        if round == 0 {
            self.rng = seeded_rng(self.seed);
        }
        for edge in self.csr.edges() {
            // One draw per edge every round, independent of the matching
            // state, so the activation stream is a pure function of the
            // seed and round index; `try_push` then greedily keeps the
            // active edges that are still vertex-disjoint.
            let active = self.rng.gen_bool(TorusContactWorkload::ACTIVATION);
            if active {
                out.try_push(Interaction::new(edge.a, edge.b));
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::round::FlattenedRounds;
    use doda_core::InteractionSource;

    fn all_round_workloads(n: usize) -> Vec<Box<dyn RoundWorkload>> {
        vec![
            Box::new(RandomMatchingWorkload::new(n)),
            Box::new(TournamentWorkload::new(n)),
            Box::new(IntervalConnectedWorkload::new(n, 4)),
            Box::new(TorusContactWorkload::new(n)),
        ]
    }

    fn drain_rounds(
        source: &mut dyn RoundSource,
        rounds: usize,
        n: usize,
    ) -> Vec<Vec<Interaction>> {
        let owns = vec![true; n];
        let view = AdversaryView {
            owns_data: &owns,
            sink: NodeId(0),
        };
        let mut out = Matching::new(n);
        (0..rounds)
            .map(|r| {
                out.reset(n);
                assert!(source.next_round(r as Time, &view, &mut out));
                out.iter().collect()
            })
            .collect()
    }

    #[test]
    fn round_workloads_are_deterministic_and_seed_sensitive() {
        for w in all_round_workloads(9) {
            assert_eq!(w.node_count(), 9, "{}", w.name());
            let a = drain_rounds(w.rounds(7).as_mut(), 40, 9);
            let b = drain_rounds(w.rounds(7).as_mut(), 40, 9);
            assert_eq!(a, b, "{} must be deterministic", w.name());
            if w.name() != "tournament" {
                let c = drain_rounds(w.rounds(8).as_mut(), 40, 9);
                assert_ne!(a, c, "{} should vary with the seed", w.name());
            }
        }
    }

    #[test]
    fn round_sources_reset_at_round_zero() {
        for w in all_round_workloads(8) {
            let mut source = w.rounds(3);
            let first = drain_rounds(source.as_mut(), 25, 8);
            let second = drain_rounds(source.as_mut(), 25, 8);
            assert_eq!(first, second, "{} must reset at round 0", w.name());
        }
    }

    #[test]
    fn random_matching_rounds_are_near_perfect() {
        let w = RandomMatchingWorkload::new(10);
        for round in drain_rounds(w.rounds(1).as_mut(), 30, 10) {
            assert_eq!(round.len(), 5);
        }
        let odd = RandomMatchingWorkload::new(7);
        for round in drain_rounds(odd.rounds(1).as_mut(), 30, 7) {
            assert_eq!(round.len(), 3);
        }
    }

    #[test]
    fn tournament_meets_every_pair_once_per_cycle() {
        for n in [6usize, 7, 8] {
            let w = TournamentWorkload::new(n);
            let cycle = w.cycle_len();
            let rounds = drain_rounds(w.rounds(0).as_mut(), cycle, n);
            let mut met = std::collections::HashSet::new();
            for round in &rounds {
                // Perfect matching on even n; one sits out on odd n.
                assert_eq!(round.len(), n / 2);
                for i in round {
                    assert!(met.insert(*i), "pair {i} met twice in one cycle (n={n})");
                }
            }
            assert_eq!(met.len(), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn interval_connected_holds_a_spanning_path_per_window() {
        let t = 4;
        let n = 9;
        let w = IntervalConnectedWorkload::new(n, t);
        assert_eq!(w.window(), t);
        let rounds = drain_rounds(w.rounds(5).as_mut(), 3 * t, n);
        for window in rounds.chunks(t) {
            // The union of the window's matchings is the stable path:
            // n − 1 edges forming a connected spanning graph.
            let mut g = doda_graph::AdjacencyGraph::new(n);
            for round in window {
                for &i in round {
                    g.add_edge(i.min(), i.max());
                }
            }
            assert_eq!(g.edge_count(), n - 1);
            assert!(doda_graph::traversal::is_connected(&g));
        }
    }

    #[test]
    fn flattened_round_workloads_stream_indefinitely() {
        for w in all_round_workloads(8) {
            let mut flat = FlattenedRounds::new(w.rounds(2));
            let owns = vec![true; 8];
            let view = AdversaryView {
                owns_data: &owns,
                sink: NodeId(0),
            };
            for t in 0..500u64 {
                assert!(
                    flat.next_interaction(t, &view).is_some(),
                    "{} ran dry at t={t}",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn torus_contact_graph_is_sparse_and_in_range() {
        // Perfect square, ragged, and degenerate node counts.
        for n in [2usize, 7, 9, 16, 61] {
            let w = TorusContactWorkload::new(n);
            let g = w.compile();
            assert_eq!(g.node_count(), n, "n={n}");
            assert!(g.edge_count() <= 2 * n, "n={n}: O(n) edges, not O(n²)");
            assert!(g.edge_count() >= n / 2, "n={n}: the torus is not empty");
            for round in drain_rounds(w.rounds(9).as_mut(), 50, n) {
                for &i in &round {
                    assert!(i.max().index() < n, "n={n}: endpoint out of range");
                    assert!(
                        g.has_edge(i.min(), i.max()),
                        "n={n}: matched a non-torus edge"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_contact_rounds_activate_about_half_the_torus() {
        let n = 100; // 10×10 torus: 200 edges, no ragged boundary.
        let w = TorusContactWorkload::new(n);
        assert_eq!(w.side(), 10);
        let rounds = drain_rounds(w.rounds(4).as_mut(), 200, n);
        let mean = rounds.iter().map(Vec::len).sum::<usize>() as f64 / 200.0;
        // p = 1/2 activation thinned by greedy matching: well above a
        // vanishing matching, well below the 50-edge perfect matching.
        assert!((20.0..50.0).contains(&mean), "mean matching size {mean}");
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn tiny_round_workloads_are_rejected() {
        let _ = RandomMatchingWorkload::new(1);
    }

    #[test]
    #[should_panic(expected = "at least 2 rounds")]
    fn degenerate_window_is_rejected() {
        let _ = IntervalConnectedWorkload::new(5, 1);
    }
}
