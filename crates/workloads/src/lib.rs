//! Synthetic interaction-stream generators ("workloads") for the DODA
//! reproduction.
//!
//! The paper evaluates nothing on real traces — its results are stated
//! against the uniform randomized adversary and against explicit
//! adversarial constructions. The workloads here serve two purposes:
//!
//! 1. provide the *uniform* process of Section 4 and controlled departures
//!    from it (Zipf popularity, community mixing) for the non-uniform
//!    adversary question raised in the conclusion;
//! 2. stand in for the contact traces of the scenarios that motivate the
//!    paper's introduction (body-area sensor networks, vehicular ad-hoc
//!    encounters), so the examples exercise the same code paths a real
//!    deployment would — see DESIGN.md §2 for the substitution note.
//!
//! Every generator is **streaming-first**: [`Workload::source`] yields a
//! seeded, infinite [`doda_core::InteractionSource`] that the engine pulls
//! one interaction at a time, so sweeps run in `O(n)` memory at any
//! horizon. [`Workload::generate`] and [`Workload::fill`] are thin
//! defaults that drain the same source, which makes the streamed and
//! materialised views of a workload identical **by construction**: element
//! `t` of the stream is exactly `generate(len, seed).get(t)`.
//!
//! # Example
//!
//! ```
//! use doda_core::InteractionSequence;
//! use doda_workloads::{UniformWorkload, Workload};
//!
//! let workload = UniformWorkload::new(10);
//! // Streaming view: no buffer, pull-based.
//! let mut source = workload.source(42);
//! // Materialised view: identical interactions, now in a buffer.
//! let seq = workload.generate(500, 42);
//! assert_eq!(seq, InteractionSequence::materialize(source.as_mut(), 500));
//! assert_eq!(seq.len(), 500);
//! assert_eq!(seq.node_count(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod body_area;
pub mod community;
pub mod round_robin;
pub mod rounds;
pub mod tree_restricted;
pub mod uniform;
pub mod vehicular;
pub mod zipf;

pub use body_area::BodyAreaWorkload;
pub use community::CommunityWorkload;
pub use round_robin::RoundRobinWorkload;
pub use rounds::{
    IntervalConnectedWorkload, RandomMatchingWorkload, RoundWorkload, TorusContactWorkload,
    TournamentWorkload,
};
pub use tree_restricted::TreeRestrictedWorkload;
pub use uniform::UniformWorkload;
pub use vehicular::VehicularWorkload;
pub use zipf::ZipfWorkload;

use doda_core::{InteractionSequence, InteractionSource};

/// A generator of interaction streams.
///
/// Implementations are deterministic: the same seed always yields the same
/// stream, and the materialised views derived from it ([`generate`],
/// [`fill`]) are prefixes of that stream.
///
/// [`generate`]: Workload::generate
/// [`fill`]: Workload::fill
pub trait Workload {
    /// Number of nodes in the generated dynamic graphs.
    fn node_count(&self) -> usize;

    /// A short, human-readable name used in reports and benchmark labels.
    fn name(&self) -> &str;

    /// A seeded, infinite streaming source over this workload's
    /// interaction stream. This is the primary generation API: the engine
    /// pulls one interaction per step and nothing is buffered, so a trial
    /// at horizon 10⁷ costs the same memory as one at horizon 10³.
    ///
    /// Determinism contract: for every `len > t`, the `t`-th interaction
    /// produced by this source equals `generate(len, seed).get(t)`.
    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send>;

    /// Materialises a sequence of exactly `len` interactions — the prefix
    /// of [`source`]`(seed)` of that length. Only needed by the knowledge
    /// oracles (meetTime, futures, underlying graph), which must see the
    /// future; everything else should stream.
    ///
    /// [`source`]: Workload::source
    fn generate(&self, len: usize, seed: u64) -> InteractionSequence {
        let mut seq = InteractionSequence::new(self.node_count());
        self.fill(&mut seq, len, seed);
        seq
    }

    /// Fills `seq` with exactly the sequence `generate(len, seed)` would
    /// return, reusing its allocation. Sweep workers that must materialise
    /// (knowledge-based algorithms) refill one scratch buffer across many
    /// trials through this.
    fn fill(&self, seq: &mut InteractionSequence, len: usize, seed: u64) {
        seq.fill_from(self.source(seed).as_mut(), len);
    }
}

// References delegate everything (including the provided methods, in case
// an implementor overrides them), so generic consumers can hand any
// `&W: Workload` to an API that stores `&dyn Workload`.
impl<W: Workload + ?Sized> Workload for &W {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send> {
        (**self).source(seed)
    }

    fn generate(&self, len: usize, seed: u64) -> InteractionSequence {
        (**self).generate(len, seed)
    }

    fn fill(&self, seq: &mut InteractionSequence, len: usize, seed: u64) {
        (**self).fill(seq, len, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::sequence::AdversaryView;
    use doda_graph::NodeId;

    fn all_workloads(n: usize) -> Vec<Box<dyn Workload>> {
        vec![
            Box::new(UniformWorkload::new(n)),
            Box::new(ZipfWorkload::new(n, 1.2)),
            Box::new(CommunityWorkload::new(n, 2, 0.9)),
            Box::new(BodyAreaWorkload::new(n)),
            Box::new(VehicularWorkload::new(n, 3)),
            Box::new(RoundRobinWorkload::all_pairs(n)),
            Box::new(TreeRestrictedWorkload::random_tree(n)),
        ]
    }

    /// All workloads must produce valid, deterministic sequences of the
    /// requested length.
    #[test]
    fn all_workloads_produce_valid_deterministic_sequences() {
        for w in &all_workloads(8) {
            assert_eq!(w.node_count(), 8, "{}", w.name());
            let a = w.generate(300, 7);
            let b = w.generate(300, 7);
            let c = w.generate(300, 8);
            assert_eq!(a.len(), 300, "{}", w.name());
            assert_eq!(a.node_count(), 8, "{}", w.name());
            assert_eq!(a, b, "{} must be deterministic", w.name());
            // Different seeds should (essentially always) differ, except for
            // the fully deterministic round-robin workload.
            if w.name() != "round-robin" {
                assert_ne!(a, c, "{} should vary with the seed", w.name());
            }
            assert!(!w.name().is_empty());
        }
    }

    /// `fill` must be observationally identical to `generate`, including
    /// when the target buffer held a stale sequence of a different shape.
    #[test]
    fn fill_matches_generate_for_all_workloads() {
        for w in &all_workloads(8) {
            // Stale scratch over a different node count and length.
            let mut scratch = UniformWorkload::new(5).generate(40, 0);
            w.fill(&mut scratch, 200, 11);
            assert_eq!(scratch, w.generate(200, 11), "{}", w.name());
        }
    }

    /// The streaming contract: the source's stream and the materialised
    /// sequence are the same object viewed two ways. This is what makes
    /// streamed and materialised trial execution byte-identical.
    #[test]
    fn source_streams_exactly_what_generate_materializes() {
        for w in &all_workloads(9) {
            for seed in [0u64, 7, 0xD0DA] {
                let seq = w.generate(400, seed);
                let mut source = w.source(seed);
                assert_eq!(source.node_count(), w.node_count(), "{}", w.name());
                let owns = vec![true; w.node_count()];
                let view = AdversaryView {
                    owns_data: &owns,
                    sink: NodeId(0),
                };
                for t in 0..400u64 {
                    assert_eq!(
                        source.next_interaction(t, &view),
                        seq.get(t),
                        "{} diverged at t={t}, seed={seed}",
                        w.name()
                    );
                }
            }
        }
    }

    /// Workload sources never run dry: every generator models an endless
    /// contact process.
    #[test]
    fn sources_are_infinite() {
        for w in &all_workloads(6) {
            let mut source = w.source(3);
            let owns = vec![true; 6];
            let view = AdversaryView {
                owns_data: &owns,
                sink: NodeId(0),
            };
            for t in 0..2_000u64 {
                assert!(
                    source.next_interaction(t, &view).is_some(),
                    "{} ran dry at t={t}",
                    w.name()
                );
            }
        }
    }
}
