//! Synthetic interaction-sequence generators ("workloads") for the DODA
//! reproduction.
//!
//! The paper evaluates nothing on real traces — its results are stated
//! against the uniform randomized adversary and against explicit
//! adversarial constructions. The workloads here serve two purposes:
//!
//! 1. provide the *uniform* process of Section 4 and controlled departures
//!    from it (Zipf popularity, community mixing) for the non-uniform
//!    adversary question raised in the conclusion;
//! 2. stand in for the contact traces of the scenarios that motivate the
//!    paper's introduction (body-area sensor networks, vehicular ad-hoc
//!    encounters), so the examples exercise the same code paths a real
//!    deployment would — see DESIGN.md §2 for the substitution note.
//!
//! Every generator is deterministic given its seed, and produces a plain
//! [`doda_core::InteractionSequence`] that any algorithm / oracle can
//! consume.
//!
//! # Example
//!
//! ```
//! use doda_workloads::{UniformWorkload, Workload};
//!
//! let workload = UniformWorkload::new(10);
//! let seq = workload.generate(500, 42);
//! assert_eq!(seq.len(), 500);
//! assert_eq!(seq.node_count(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod body_area;
pub mod community;
pub mod round_robin;
pub mod tree_restricted;
pub mod uniform;
pub mod vehicular;
pub mod zipf;

pub use body_area::BodyAreaWorkload;
pub use community::CommunityWorkload;
pub use round_robin::RoundRobinWorkload;
pub use tree_restricted::TreeRestrictedWorkload;
pub use uniform::UniformWorkload;
pub use vehicular::VehicularWorkload;
pub use zipf::ZipfWorkload;

use doda_core::InteractionSequence;

/// A generator of interaction sequences.
///
/// Implementations are deterministic: the same `(len, seed)` always yields
/// the same sequence.
pub trait Workload {
    /// Number of nodes in the generated dynamic graphs.
    fn node_count(&self) -> usize;

    /// A short, human-readable name used in reports and benchmark labels.
    fn name(&self) -> &str;

    /// Generates a sequence of exactly `len` interactions.
    fn generate(&self, len: usize, seed: u64) -> InteractionSequence;

    /// Fills `seq` with exactly the sequence `generate(len, seed)` would
    /// return, reusing its allocation where possible.
    ///
    /// The default implementation simply replaces `seq`; generators on the
    /// sweep hot path (e.g. [`UniformWorkload`]) override it to refill the
    /// buffer in place, so a worker running thousands of trials keeps one
    /// sequence allocation alive instead of allocating one per trial.
    fn fill(&self, seq: &mut InteractionSequence, len: usize, seed: u64) {
        *seq = self.generate(len, seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All workloads must produce valid, deterministic sequences of the
    /// requested length.
    #[test]
    fn all_workloads_produce_valid_deterministic_sequences() {
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(UniformWorkload::new(8)),
            Box::new(ZipfWorkload::new(8, 1.2)),
            Box::new(CommunityWorkload::new(8, 2, 0.9)),
            Box::new(BodyAreaWorkload::new(8)),
            Box::new(VehicularWorkload::new(8, 3)),
            Box::new(RoundRobinWorkload::all_pairs(8)),
            Box::new(TreeRestrictedWorkload::random_tree(8)),
        ];
        for w in &workloads {
            assert_eq!(w.node_count(), 8, "{}", w.name());
            let a = w.generate(300, 7);
            let b = w.generate(300, 7);
            let c = w.generate(300, 8);
            assert_eq!(a.len(), 300, "{}", w.name());
            assert_eq!(a.node_count(), 8, "{}", w.name());
            assert_eq!(a, b, "{} must be deterministic", w.name());
            // Different seeds should (essentially always) differ, except for
            // the fully deterministic round-robin workload.
            if w.name() != "round-robin" {
                assert_ne!(a, c, "{} should vary with the seed", w.name());
            }
            assert!(!w.name().is_empty());
        }
    }

    /// `fill` must be observationally identical to `generate`, including
    /// when the target buffer held a stale sequence of a different shape.
    #[test]
    fn fill_matches_generate_for_all_workloads() {
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(UniformWorkload::new(8)),
            Box::new(ZipfWorkload::new(8, 1.2)),
            Box::new(CommunityWorkload::new(8, 2, 0.9)),
            Box::new(BodyAreaWorkload::new(8)),
            Box::new(VehicularWorkload::new(8, 3)),
            Box::new(RoundRobinWorkload::all_pairs(8)),
            Box::new(TreeRestrictedWorkload::random_tree(8)),
        ];
        for w in &workloads {
            // Stale scratch over a different node count and length.
            let mut scratch = UniformWorkload::new(5).generate(40, 0);
            w.fill(&mut scratch, 200, 11);
            assert_eq!(scratch, w.generate(200, 11), "{}", w.name());
        }
    }
}
