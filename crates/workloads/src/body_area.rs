//! Body-area sensor network contacts.
//!
//! The paper's introduction motivates the problem with "sensors deployed on
//! a human body" reporting to a hub. This workload is the synthetic
//! stand-in for such a contact trace: node 0 is the hub (the natural sink),
//! each sensor contacts the hub periodically (each with its own period and
//! phase), and occasional sensor-to-sensor contacts occur when body parts
//! come close (e.g. wrist sensor meeting hip sensor).

use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, InteractionSource, Time};
use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

use crate::Workload;

/// Periodic hub-centric contacts with occasional peer contacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyAreaWorkload {
    n: usize,
    /// Probability that a time step carries a sensor-to-sensor contact
    /// instead of the next scheduled hub contact.
    peer_contact_probability: f64,
}

impl BodyAreaWorkload {
    /// Creates the workload over `n ≥ 3` nodes (hub + at least two sensors)
    /// with the default 20% peer-contact rate.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize) -> Self {
        Self::with_peer_probability(n, 0.2)
    }

    /// Creates the workload with an explicit peer-contact probability.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or the probability is outside `[0, 1]`.
    pub fn with_peer_probability(n: usize, peer_contact_probability: f64) -> Self {
        assert!(
            n >= 3,
            "a body-area network needs a hub and at least 2 sensors, got {n}"
        );
        assert!(
            (0.0..=1.0).contains(&peer_contact_probability),
            "probability {peer_contact_probability} must be in [0, 1]"
        );
        BodyAreaWorkload {
            n,
            peer_contact_probability,
        }
    }

    /// The hub node (use it as the sink).
    pub const HUB: NodeId = NodeId(0);
}

impl Workload for BodyAreaWorkload {
    fn node_count(&self) -> usize {
        self.n
    }

    fn name(&self) -> &str {
        "body-area"
    }

    fn source(&self, seed: u64) -> Box<dyn InteractionSource + Send> {
        let mut rng = seeded_rng(seed);
        let sensors = self.n - 1;
        // Each sensor reports to the hub with its own period (in "events"):
        // slower sensors (larger period) model low-duty-cycle devices.
        let periods: Vec<u64> = (0..sensors)
            .map(|_| rng.gen_range(2..=(2 * sensors as u64 + 2)))
            .collect();
        // next_due[i] = virtual time of sensor i's next hub contact.
        let next_due: Vec<u64> = periods
            .iter()
            .map(|&p| rng.gen_range(0..p.max(1)))
            .collect();
        Box::new(BodyAreaSource {
            n: self.n,
            peer_contact_probability: self.peer_contact_probability,
            periods,
            next_due,
            rng,
        })
    }
}

/// Streaming source behind [`BodyAreaWorkload`]: periodic hub reports with
/// occasional peer contacts.
#[derive(Debug, Clone)]
pub struct BodyAreaSource {
    n: usize,
    peer_contact_probability: f64,
    periods: Vec<u64>,
    next_due: Vec<u64>,
    rng: DodaRng,
}

impl InteractionSource for BodyAreaSource {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        let sensors = self.n - 1;
        let interaction = if self.rng.gen_bool(self.peer_contact_probability) {
            // Two distinct sensors meet.
            let a = self.rng.gen_range(0..sensors);
            let b = loop {
                let candidate = self.rng.gen_range(0..sensors);
                if candidate != a {
                    break candidate;
                }
            };
            Interaction::new(NodeId(a + 1), NodeId(b + 1))
        } else {
            // The sensor whose report is due earliest contacts the hub.
            let (idx, _) = self
                .next_due
                .iter()
                .enumerate()
                .min_by_key(|&(i, &due)| (due, i))
                .expect("at least two sensors");
            self.next_due[idx] += self.periods[idx];
            Interaction::new(BodyAreaWorkload::HUB, NodeId(idx + 1))
        };
        Some(interaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_dominates_contacts() {
        let w = BodyAreaWorkload::new(9);
        let seq = w.generate(5_000, 7);
        let hub_contacts = seq
            .iter()
            .filter(|ti| ti.interaction.involves(BodyAreaWorkload::HUB))
            .count();
        let fraction = hub_contacts as f64 / seq.len() as f64;
        assert!((fraction - 0.8).abs() < 0.05, "hub fraction {fraction}");
    }

    #[test]
    fn every_sensor_eventually_reports() {
        let w = BodyAreaWorkload::new(6);
        let seq = w.generate(2_000, 11);
        for sensor in 1..6 {
            assert!(
                !seq.meeting_times(BodyAreaWorkload::HUB, NodeId(sensor))
                    .is_empty(),
                "sensor {sensor} never meets the hub"
            );
        }
    }

    #[test]
    fn peer_probability_zero_means_pure_star() {
        let w = BodyAreaWorkload::with_peer_probability(5, 0.0);
        let seq = w.generate(1_000, 3);
        assert!(seq
            .iter()
            .all(|ti| ti.interaction.involves(BodyAreaWorkload::HUB)));
    }

    #[test]
    #[should_panic(expected = "at least 2 sensors")]
    fn rejects_tiny_networks() {
        let _ = BodyAreaWorkload::new(2);
    }
}
