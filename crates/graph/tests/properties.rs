//! Property-based tests for the graph substrate.

use doda_graph::{
    generators, spanning_tree, traversal, underlying::underlying_graph, AdjacencyGraph, Edge,
    NodeId, UnionFind,
};
use proptest::prelude::*;

/// Strategy producing a random edge list over `n` nodes.
fn edge_list(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |pairs| {
        pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .collect::<Vec<_>>()
    })
}

proptest! {
    #[test]
    fn adjacency_edge_count_matches_distinct_edges(pairs in edge_list(12, 64)) {
        let mut g = AdjacencyGraph::new(12);
        let mut distinct = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            g.add_edge(NodeId(a), NodeId(b));
            distinct.insert(Edge::new(NodeId(a), NodeId(b)));
        }
        prop_assert_eq!(g.edge_count(), distinct.len());
        // Every inserted edge is queryable in both directions.
        for e in &distinct {
            prop_assert!(g.has_edge(e.a, e.b));
            prop_assert!(g.has_edge(e.b, e.a));
        }
        // Handshake lemma.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn csr_agrees_with_adjacency(pairs in edge_list(10, 40)) {
        let g = underlying_graph(10, pairs.iter().map(|&(a, b)| (NodeId(a), NodeId(b))));
        let csr = doda_graph::CsrGraph::from(&g);
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        for u in g.nodes() {
            let a: Vec<_> = g.neighbors(u).collect();
            prop_assert_eq!(csr.neighbors(u), a.as_slice());
        }
    }

    #[test]
    fn bfs_distance_is_a_metric_on_connected_graphs(n in 2usize..20, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let g = generators::random_tree_graph(n, &mut rng);
        let res = traversal::bfs(&g, NodeId(0));
        // All nodes reachable in a tree; distance bounded by n - 1; parent
        // distance is exactly one less.
        for v in g.nodes() {
            let d = res.distance[v.index()];
            prop_assert!(d.is_some());
            prop_assert!(d.unwrap() < n);
            if let Some(p) = res.parent[v.index()] {
                prop_assert_eq!(res.distance[p.index()].unwrap() + 1, d.unwrap());
            }
        }
    }

    #[test]
    fn union_find_set_count_matches_components(pairs in edge_list(14, 30)) {
        let g = underlying_graph(14, pairs.iter().map(|&(a, b)| (NodeId(a), NodeId(b))));
        let mut uf = UnionFind::new(14);
        for e in g.edges() {
            uf.union(e.a, e.b);
        }
        let comps = traversal::connected_components(&g);
        prop_assert_eq!(uf.set_count(), comps.len());
    }

    #[test]
    fn spanning_tree_of_connected_gnp_is_valid(n in 2usize..16, seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // Dense enough to usually be connected; skip the disconnected draws.
        let g = generators::gnp_graph(n, 0.6, &mut rng);
        if !traversal::is_connected(&g) {
            return Ok(());
        }
        let t = spanning_tree::deterministic_spanning_tree(&g, NodeId(0)).unwrap();
        prop_assert_eq!(t.len(), n);
        prop_assert!(spanning_tree::is_spanning_tree_of(&t, &g));
        prop_assert_eq!(t.edges().len(), n - 1);
        // Postorder puts every child before its parent.
        let order = t.postorder();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for (c, p) in t.parent_edges() {
            prop_assert!(pos[&c] < pos[&p]);
        }
    }

    #[test]
    fn evolving_underlying_equals_direct_union(pairs in edge_list(8, 50)) {
        let eg = doda_graph::EvolvingGraph::from_pairs(
            8,
            pairs.iter().map(|&(a, b)| (NodeId(a), NodeId(b))),
        );
        let direct = underlying_graph(8, pairs.iter().map(|&(a, b)| (NodeId(a), NodeId(b))));
        prop_assert_eq!(eg.underlying(), direct);
    }
}
