//! Adjacency-set graph representation.
//!
//! [`AdjacencyGraph`] is the mutable, general-purpose undirected graph used
//! throughout the reproduction: underlying graphs `G̅`, generator outputs,
//! and the graphs on which spanning trees are computed. It favours
//! simplicity and deterministic iteration order (neighbour sets are sorted)
//! over raw performance; the compact [`crate::CsrGraph`] is available for
//! large read-only graphs.

use std::collections::BTreeSet;

use crate::{Edge, NodeId};

/// A mutable undirected simple graph over dense node ids `0..n`.
///
/// Parallel edges and self-loops are rejected/ignored: adding an existing
/// edge is a no-op, adding a self-loop panics (consistent with the DODA
/// interaction model where interactions involve two distinct nodes).
///
/// # Example
///
/// ```
/// use doda_graph::{AdjacencyGraph, NodeId};
///
/// let mut g = AdjacencyGraph::new(3);
/// g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(1), NodeId(2));
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(NodeId(1), NodeId(0)));
/// assert_eq!(g.degree(NodeId(1)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyGraph {
    neighbors: Vec<BTreeSet<NodeId>>,
    edge_count: usize,
}

impl AdjacencyGraph {
    /// Creates an empty graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        AdjacencyGraph {
            neighbors: vec![BTreeSet::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph with `n` nodes from an iterator of edges.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or if an edge is a self-loop.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut g = AdjacencyGraph::new(n);
        for e in edges {
            g.add_edge(e.a, e.b);
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge was new.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u != v, "self-loop {u} is not allowed");
        assert!(
            u.index() < self.node_count() && v.index() < self.node_count(),
            "edge {u}-{v} out of range for {} nodes",
            self.node_count()
        );
        let inserted = self.neighbors[u.index()].insert(v);
        if inserted {
            self.neighbors[v.index()].insert(u);
            self.edge_count += 1;
        }
        inserted
    }

    /// Removes the undirected edge `{u, v}`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return false;
        }
        let removed = self.neighbors[u.index()].remove(&v);
        if removed {
            self.neighbors[v.index()].remove(&u);
            self.edge_count -= 1;
        }
        removed
    }

    /// Returns `true` if the edge `{u, v}` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors
            .get(u.index())
            .is_some_and(|s| s.contains(&v))
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors[u.index()].len()
    }

    /// Iterates over the neighbours of `u` in increasing id order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors[u.index()].iter().copied()
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        crate::node::node_range(self.node_count())
    }

    /// Iterates over all edges in canonical, deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.neighbors.iter().enumerate().flat_map(|(i, set)| {
            let u = NodeId(i);
            set.iter()
                .copied()
                .filter(move |v| u < *v)
                .map(move |v| Edge::new(u, v))
        })
    }

    /// Returns the maximum degree of the graph, or 0 for an empty node set.
    pub fn max_degree(&self) -> usize {
        self.neighbors.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Returns `true` if every pair of distinct nodes is joined by an edge.
    pub fn is_complete(&self) -> bool {
        let n = self.node_count();
        n < 2 || self.edge_count == n * (n - 1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g
    }

    #[test]
    fn add_and_query_edges() {
        let g = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = path3();
        assert!(!g.add_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = path3();
        assert!(g.remove_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.remove_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path3();
        assert_eq!(g.degree(NodeId(1)), 2);
        let nbrs: Vec<_> = g.neighbors(NodeId(1)).collect();
        assert_eq!(nbrs, vec![NodeId(0), NodeId(2)]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edges_iteration_is_canonical_and_complete() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(2))
            ]
        );
    }

    #[test]
    fn from_edges_builder() {
        let g = AdjacencyGraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(3)),
                Edge::new(NodeId(1), NodeId(2)),
            ],
        );
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(3), NodeId(0)));
    }

    #[test]
    fn completeness_check() {
        let mut g = AdjacencyGraph::new(3);
        assert!(!g.is_complete());
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        assert!(g.is_complete());
        assert!(AdjacencyGraph::new(1).is_complete());
        assert!(AdjacencyGraph::new(0).is_complete());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = AdjacencyGraph::new(2);
        g.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = AdjacencyGraph::new(2);
        g.add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    fn empty_graph_properties() {
        let g = AdjacencyGraph::new(0);
        assert_eq!(g.node_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
