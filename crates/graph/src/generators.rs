//! Static graph generators.
//!
//! These generators produce the underlying graphs used by the adversarial
//! constructions of the paper (paths, cycles, stars — Theorems 1–5), by the
//! tests, and by the workload generators in `doda-workloads`.

use crate::{AdjacencyGraph, NodeId};

/// Path graph `0 - 1 - 2 - … - (n-1)`.
pub fn path_graph(n: usize) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(n);
    for i in 1..n {
        g.add_edge(NodeId(i - 1), NodeId(i));
    }
    g
}

/// Cycle graph over `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3` (a cycle needs at least three nodes).
pub fn cycle_graph(n: usize) -> AdjacencyGraph {
    assert!(n >= 3, "a cycle requires at least 3 nodes, got {n}");
    let mut g = path_graph(n);
    g.add_edge(NodeId(n - 1), NodeId(0));
    g
}

/// Star graph with centre `0` and `n - 1` leaves.
pub fn star_graph(n: usize) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i));
    }
    g
}

/// Complete graph over `n` nodes.
pub fn complete_graph(n: usize) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i), NodeId(j));
        }
    }
    g
}

/// 2-D grid graph of `rows × cols` nodes; node `(r, c)` has id `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = NodeId(r * cols + c);
            if c + 1 < cols {
                g.add_edge(id, NodeId(r * cols + c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id, NodeId((r + 1) * cols + c));
            }
        }
    }
    g
}

/// Balanced binary tree over `n` nodes, rooted at node `0` (node `i` has
/// children `2i + 1` and `2i + 2` when they exist).
pub fn binary_tree_graph(n: usize) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                g.add_edge(NodeId(i), NodeId(child));
            }
        }
    }
    g
}

/// Random tree over `n` nodes built with a random-attachment process: node
/// `i` attaches to a uniformly chosen earlier node. Deterministic given the
/// caller's RNG.
pub fn random_tree_graph<R: rand::Rng>(n: usize, rng: &mut R) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(NodeId(parent), NodeId(i));
    }
    g
}

/// Erdős–Rényi `G(n, p)` random graph. Deterministic given the caller's RNG.
pub fn gnp_graph<R: rand::Rng>(n: usize, p: f64, rng: &mut R) -> AdjacencyGraph {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability p={p} must be in [0, 1]"
    );
    let mut g = AdjacencyGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_counts() {
        let g = path_graph(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn path_degenerate_sizes() {
        assert_eq!(path_graph(0).node_count(), 0);
        assert_eq!(path_graph(1).edge_count(), 0);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle_graph(4);
        assert_eq!(g.edge_count(), 4);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_rejects_small_n() {
        let _ = cycle_graph(2);
    }

    #[test]
    fn star_counts() {
        let g = star_graph(6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(NodeId(0)), 5);
        assert_eq!(g.degree(NodeId(3)), 1);
    }

    #[test]
    fn complete_counts() {
        let g = complete_graph(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.is_complete());
    }

    #[test]
    fn grid_counts() {
        let g = grid_graph(3, 4);
        assert_eq!(g.node_count(), 12);
        // 3 rows × 3 horizontal edges + 2 × 4 vertical edges = 9 + 8 = 17.
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(0), NodeId(4)));
        assert!(!g.has_edge(NodeId(3), NodeId(4)));
    }

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree_graph(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(3)), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [1usize, 2, 10, 50] {
            let g = random_tree_graph(n, &mut rng);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let empty = gnp_graph(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = gnp_graph(10, 1.0, &mut rng);
        assert!(full.is_complete());
    }

    #[test]
    fn gnp_is_deterministic_for_a_seed() {
        let g1 = gnp_graph(20, 0.3, &mut ChaCha8Rng::seed_from_u64(42));
        let g2 = gnp_graph(20, 0.3, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn gnp_rejects_bad_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = gnp_graph(5, 1.5, &mut rng);
    }
}
