//! Rooted trees.
//!
//! The spanning-tree DODA algorithm of Theorems 4 and 5 of the paper makes
//! every node wait for the data of its children in a rooted spanning tree
//! of the underlying graph and then forward towards the root (the sink).
//! [`RootedTree`] stores the parent/children structure needed by that
//! algorithm, plus utilities (depth, leaves, subtree sizes) used by tests
//! and by the offline convergecast schedule validation.

use crate::{Edge, NodeId};

/// A rooted tree over a subset of the dense node ids `0..n`.
///
/// Nodes that are not part of the tree have no parent and are not children
/// of anyone; [`RootedTree::contains`] reports membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    /// `parent[v] = Some(u)` iff `u` is the parent of `v`. The root has no parent.
    parent: Vec<Option<NodeId>>,
    /// Children lists, sorted by id.
    children: Vec<Vec<NodeId>>,
    /// Membership flags.
    member: Vec<bool>,
    size: usize,
}

impl RootedTree {
    /// Creates a tree containing only `root`, over an id space of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn new(n: usize, root: NodeId) -> Self {
        assert!(root.index() < n, "root {root} out of range for {n} nodes");
        let mut member = vec![false; n];
        member[root.index()] = true;
        RootedTree {
            root,
            parent: vec![None; n],
            children: vec![Vec::new(); n],
            member,
            size: 1,
        }
    }

    /// Builds a rooted tree from a parent vector (as produced by BFS).
    ///
    /// `parent[v] = Some(u)` makes `u` the parent of `v`; nodes with no
    /// parent other than `root` are left out of the tree.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range, if a parent edge refers to an
    /// out-of-range node, or if the parent structure contains a cycle.
    pub fn from_parents(root: NodeId, parent: &[Option<NodeId>]) -> Self {
        let n = parent.len();
        let mut tree = RootedTree::new(n, root);
        // Attach nodes in an order that guarantees parents are attached first:
        // repeatedly scan for attachable nodes. O(n^2) worst case but n is
        // small in tests; BFS parents are attachable in one or two passes.
        let mut remaining: Vec<NodeId> = (0..n)
            .map(NodeId)
            .filter(|&v| v != root && parent[v.index()].is_some())
            .collect();
        let mut progress = true;
        while progress && !remaining.is_empty() {
            progress = false;
            remaining.retain(|&v| {
                let p = parent[v.index()].expect("retained nodes have parents");
                if tree.contains(p) {
                    tree.attach(v, p);
                    progress = true;
                    false
                } else {
                    true
                }
            });
        }
        assert!(
            remaining.is_empty(),
            "parent structure contains a cycle or dangling parents: {remaining:?}"
        );
        tree
    }

    /// The root of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes currently in the tree.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns `true` if the tree contains only its root.
    pub fn is_empty(&self) -> bool {
        self.size == 1
    }

    /// Size of the id space the tree was created over.
    pub fn id_space(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if `v` is part of the tree.
    pub fn contains(&self, v: NodeId) -> bool {
        self.member.get(v.index()).copied().unwrap_or(false)
    }

    /// Attaches `child` under `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not in the tree, if `child` already is, or if
    /// either id is out of range.
    pub fn attach(&mut self, child: NodeId, parent: NodeId) {
        assert!(self.contains(parent), "parent {parent} not in tree");
        assert!(!self.contains(child), "child {child} already in tree");
        self.member[child.index()] = true;
        self.parent[child.index()] = Some(parent);
        let children = &mut self.children[parent.index()];
        let pos = children.partition_point(|&c| c < child);
        children.insert(pos, child);
        self.size += 1;
    }

    /// The parent of `v`, or `None` for the root or non-members.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent.get(v.index()).copied().flatten()
    }

    /// The children of `v`, sorted by id (empty for non-members and leaves).
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        self.children
            .get(v.index())
            .map(|c| c.as_slice())
            .unwrap_or(&[])
    }

    /// Depth of `v` (root has depth 0), or `None` for non-members.
    pub fn depth(&self, v: NodeId) -> Option<usize> {
        if !self.contains(v) {
            return None;
        }
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        Some(d)
    }

    /// Height of the tree (maximum depth over members).
    pub fn height(&self) -> usize {
        self.members()
            .filter_map(|v| self.depth(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over tree members in increasing id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.member
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId(i))
    }

    /// Iterates over the leaves (members with no children).
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members().filter(move |&v| self.children(v).is_empty())
    }

    /// Iterates over tree edges as (child, parent) pairs.
    pub fn parent_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.members()
            .filter_map(move |v| self.parent(v).map(|p| (v, p)))
    }

    /// Returns the tree edges as canonical undirected [`Edge`]s.
    pub fn edges(&self) -> Vec<Edge> {
        self.parent_edges().map(|(c, p)| Edge::new(c, p)).collect()
    }

    /// Number of nodes in the subtree rooted at `v` (including `v`), or 0
    /// for non-members.
    pub fn subtree_size(&self, v: NodeId) -> usize {
        if !self.contains(v) {
            return 0;
        }
        1 + self
            .children(v)
            .iter()
            .map(|&c| self.subtree_size(c))
            .sum::<usize>()
    }

    /// The path from `v` up to the root (inclusive), or `None` for non-members.
    pub fn path_to_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.contains(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        Some(path)
    }

    /// Members in post-order (children before parents); the root is last.
    ///
    /// This is exactly the order in which the spanning-tree DODA algorithm
    /// can possibly transmit data.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.size);
        // Iterative post-order to avoid recursion depth limits on long paths.
        let mut stack = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
            } else {
                stack.push((v, true));
                for &c in self.children(v).iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the tree
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     / \
    ///    3   4
    /// ```
    fn sample_tree() -> RootedTree {
        let mut t = RootedTree::new(5, NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(0));
        t.attach(NodeId(3), NodeId(1));
        t.attach(NodeId(4), NodeId(1));
        t
    }

    #[test]
    fn basic_structure() {
        let t = sample_tree();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.children(NodeId(1)), &[NodeId(3), NodeId(4)]);
        assert_eq!(t.children(NodeId(2)), &[] as &[NodeId]);
    }

    #[test]
    fn depth_height_and_paths() {
        let t = sample_tree();
        assert_eq!(t.depth(NodeId(0)), Some(0));
        assert_eq!(t.depth(NodeId(4)), Some(2));
        assert_eq!(t.height(), 2);
        assert_eq!(
            t.path_to_root(NodeId(3)),
            Some(vec![NodeId(3), NodeId(1), NodeId(0)])
        );
    }

    #[test]
    fn leaves_and_subtree_sizes() {
        let t = sample_tree();
        let leaves: Vec<_> = t.leaves().collect();
        assert_eq!(leaves, vec![NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(t.subtree_size(NodeId(0)), 5);
        assert_eq!(t.subtree_size(NodeId(1)), 3);
        assert_eq!(t.subtree_size(NodeId(2)), 1);
    }

    #[test]
    fn postorder_children_before_parents() {
        let t = sample_tree();
        let order = t.postorder();
        assert_eq!(order.len(), 5);
        assert_eq!(*order.last().unwrap(), NodeId(0));
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        for (child, parent) in t.parent_edges() {
            assert!(pos(child) < pos(parent), "{child} must precede {parent}");
        }
    }

    #[test]
    fn non_members_are_handled() {
        let mut t = RootedTree::new(6, NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        assert!(!t.contains(NodeId(5)));
        assert_eq!(t.depth(NodeId(5)), None);
        assert_eq!(t.subtree_size(NodeId(5)), 0);
        assert_eq!(t.path_to_root(NodeId(5)), None);
        assert_eq!(t.children(NodeId(5)), &[] as &[NodeId]);
    }

    #[test]
    fn from_parents_builds_bfs_tree() {
        let parent = vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(1))];
        let t = RootedTree::from_parents(NodeId(0), &parent);
        assert_eq!(t.len(), 4);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.children(NodeId(1)), &[NodeId(2), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn from_parents_rejects_cycles() {
        // 1 -> 2 -> 1 cycle, disconnected from the root 0.
        let parent = vec![None, Some(NodeId(2)), Some(NodeId(1))];
        let _ = RootedTree::from_parents(NodeId(0), &parent);
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn attach_rejects_duplicates() {
        let mut t = sample_tree();
        t.attach(NodeId(3), NodeId(2));
    }

    #[test]
    fn edges_are_canonical() {
        let t = sample_tree();
        let mut edges = t.edges();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(0), NodeId(2)),
                Edge::new(NodeId(1), NodeId(3)),
                Edge::new(NodeId(1), NodeId(4)),
            ]
        );
    }
}
