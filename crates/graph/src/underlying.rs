//! Underlying graph extraction.
//!
//! Section 3.2 of the paper defines the underlying graph `G̅ = (V, E)` of a
//! dynamic graph as the static graph whose edges are the pairs of nodes
//! that interact at least once: `E = {(u, v) | ∃t, I_t = {u, v}}`.
//!
//! The functions here work on plain `(NodeId, NodeId)` pairs so that the
//! graph substrate stays independent of the interaction model defined in
//! `doda-core` (which depends on this crate).

use crate::{AdjacencyGraph, NodeId, UnionFind};

/// Builds the underlying graph `G̅` over `n` nodes from an iterator of
/// interaction pairs.
///
/// Repeated interactions contribute a single edge; self-pairs are rejected.
///
/// # Panics
///
/// Panics if a pair contains an out-of-range node or equal endpoints.
pub fn underlying_graph<I>(n: usize, interactions: I) -> AdjacencyGraph
where
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    let mut g = AdjacencyGraph::new(n);
    for (u, v) in interactions {
        g.add_edge(u, v);
    }
    g
}

/// Returns the length of the shortest prefix of `interactions` whose
/// underlying graph is connected over all `n` nodes, or `None` if the whole
/// sequence never connects them.
///
/// This is the earliest time at which *any* aggregation schedule touching
/// all nodes could conceivably exist, and is used as a sanity lower bound
/// in the experiment harness.
pub fn connectivity_prefix_len<I>(n: usize, interactions: I) -> Option<usize>
where
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    if n <= 1 {
        return Some(0);
    }
    let mut uf = UnionFind::new(n);
    for (idx, (u, v)) in interactions.into_iter().enumerate() {
        uf.union(u, v);
        if uf.all_connected() {
            return Some(idx + 1);
        }
    }
    None
}

/// Counts how many times each canonical pair appears in the sequence and
/// returns `true` if every edge of the underlying graph appears at least
/// `k` times.
///
/// Theorem 4 of the paper assumes that every interaction that occurs at
/// least once occurs infinitely often; for finite prefixes the harness
/// checks "at least `k` times" instead.
pub fn every_edge_repeats_at_least<I>(n: usize, interactions: I, k: usize) -> bool
where
    I: IntoIterator<Item = (NodeId, NodeId)>,
{
    let mut counts = std::collections::HashMap::new();
    for (u, v) in interactions {
        let key = crate::Edge::new(u, v);
        *counts.entry(key).or_insert(0usize) += 1;
    }
    let _ = n;
    counts.values().all(|&c| c >= k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underlying_graph_deduplicates() {
        let pairs = vec![
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(0)),
            (NodeId(1), NodeId(2)),
        ];
        let g = underlying_graph(3, pairs);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn connectivity_prefix_found() {
        let pairs = vec![
            (NodeId(0), NodeId(1)),
            (NodeId(0), NodeId(1)), // duplicate, no progress
            (NodeId(2), NodeId(3)),
            (NodeId(1), NodeId(2)),
            (NodeId(3), NodeId(0)),
        ];
        assert_eq!(connectivity_prefix_len(4, pairs), Some(4));
    }

    #[test]
    fn connectivity_prefix_missing() {
        let pairs = vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1))];
        assert_eq!(connectivity_prefix_len(3, pairs), None);
    }

    #[test]
    fn connectivity_trivial_for_tiny_graphs() {
        assert_eq!(connectivity_prefix_len(0, Vec::new()), Some(0));
        assert_eq!(connectivity_prefix_len(1, Vec::new()), Some(0));
    }

    #[test]
    fn edge_repetition_check() {
        let pairs = vec![
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(0)),
            (NodeId(1), NodeId(2)),
        ];
        assert!(every_edge_repeats_at_least(3, pairs.clone(), 1));
        assert!(!every_edge_repeats_at_least(3, pairs, 2));
        assert!(every_edge_repeats_at_least(3, Vec::new(), 5));
    }
}
