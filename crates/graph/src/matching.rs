//! Matchings of static graphs.
//!
//! A *matching* is a set of pairwise vertex-disjoint edges. The round-based
//! execution model of `doda-core` schedules one matching per synchronous
//! round (many disjoint interactions at once), and the bridge from an
//! evolving graph to a round stream extracts one matching per snapshot —
//! this module provides the static-graph side of that bridge.

use crate::{AdjacencyGraph, Edge};

/// Returns `true` iff `edges` is a matching over `n` nodes: every endpoint
/// is `< n` and no node appears in more than one edge.
pub fn is_matching(n: usize, edges: &[Edge]) -> bool {
    let mut seen = vec![false; n];
    for e in edges {
        if e.b.index() >= n {
            return false;
        }
        if seen[e.a.index()] || seen[e.b.index()] {
            return false;
        }
        seen[e.a.index()] = true;
        seen[e.b.index()] = true;
    }
    true
}

/// A maximal matching of `graph`, extracted greedily over the canonical
/// edge order (so the result is deterministic for a given graph).
///
/// *Maximal* means no edge of the graph can be added without sharing an
/// endpoint — the greedy guarantee, which is within a factor 2 of the
/// maximum matching and enough for round scheduling (every uncovered node
/// has all its neighbours covered).
///
/// # Example
///
/// ```
/// use doda_graph::{matching::maximal_matching, AdjacencyGraph, NodeId};
///
/// let mut g = AdjacencyGraph::new(4);
/// g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(1), NodeId(2));
/// g.add_edge(NodeId(2), NodeId(3));
/// let m = maximal_matching(&g);
/// assert_eq!(m.len(), 2); // {0,1} and {2,3}
/// ```
pub fn maximal_matching(graph: &AdjacencyGraph) -> Vec<Edge> {
    let mut covered = vec![false; graph.node_count()];
    let mut matching = Vec::new();
    for e in graph.edges() {
        if !covered[e.a.index()] && !covered[e.b.index()] {
            covered[e.a.index()] = true;
            covered[e.b.index()] = true;
            matching.push(e);
        }
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, NodeId};

    #[test]
    fn maximal_matching_is_a_matching_and_maximal() {
        for graph in [
            generators::complete_graph(7),
            generators::cycle_graph(6),
            generators::path_graph(9),
            generators::star_graph(5),
        ] {
            let m = maximal_matching(&graph);
            assert!(is_matching(graph.node_count(), &m));
            // Maximality: every edge of the graph shares an endpoint with
            // the matching.
            let mut covered = vec![false; graph.node_count()];
            for e in &m {
                covered[e.a.index()] = true;
                covered[e.b.index()] = true;
            }
            for e in graph.edges() {
                assert!(
                    covered[e.a.index()] || covered[e.b.index()],
                    "edge {e:?} could be added — matching not maximal"
                );
            }
        }
    }

    #[test]
    fn maximal_matching_is_deterministic() {
        let g = generators::complete_graph(9);
        assert_eq!(maximal_matching(&g), maximal_matching(&g));
    }

    #[test]
    fn star_graph_matches_exactly_one_edge() {
        let g = generators::star_graph(6);
        assert_eq!(maximal_matching(&g).len(), 1);
    }

    #[test]
    fn empty_graph_has_empty_matching() {
        let g = AdjacencyGraph::new(4);
        assert!(maximal_matching(&g).is_empty());
        assert!(is_matching(4, &[]));
    }

    #[test]
    fn is_matching_rejects_shared_endpoints_and_range() {
        let shared = [
            Edge::new(NodeId(0), NodeId(1)),
            Edge::new(NodeId(1), NodeId(2)),
        ];
        assert!(!is_matching(3, &shared));
        let out_of_range = [Edge::new(NodeId(0), NodeId(5))];
        assert!(!is_matching(3, &out_of_range));
        let fine = [
            Edge::new(NodeId(0), NodeId(1)),
            Edge::new(NodeId(2), NodeId(3)),
        ];
        assert!(is_matching(4, &fine));
    }
}
