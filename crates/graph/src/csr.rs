//! Compressed sparse row (CSR) graph representation.
//!
//! [`CsrGraph`] is an immutable, cache-friendly undirected graph used when
//! the same graph is traversed many times (e.g. repeated convergecast
//! computations over the underlying graph of a long interaction sequence).
//! It is built once from an edge list or from an [`AdjacencyGraph`].

use crate::{AdjacencyGraph, Edge, NodeId};

/// An immutable undirected graph in compressed sparse row form.
///
/// Neighbour lists are sorted by id, and duplicate edges are collapsed at
/// construction time.
///
/// # Example
///
/// ```
/// use doda_graph::{CsrGraph, Edge, NodeId};
///
/// let g = CsrGraph::from_edges(4, vec![
///     Edge::new(NodeId(0), NodeId(1)),
///     Edge::new(NodeId(1), NodeId(2)),
///     Edge::new(NodeId(2), NodeId(3)),
/// ]);
/// assert_eq!(g.degree(NodeId(1)), 2);
/// assert_eq!(g.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    edge_count: usize,
}

impl CsrGraph {
    /// Builds a CSR graph with `n` nodes from an iterator of edges.
    ///
    /// Duplicate edges are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = Edge>,
    {
        let adjacency = AdjacencyGraph::from_edges(n, edges);
        Self::from(&adjacency)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// The sorted neighbour slice of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// Returns `true` if the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.node_count() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        crate::node::node_range(self.node_count())
    }

    /// Iterates over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |v| u < *v)
                .map(move |v| Edge::new(u, v))
        })
    }
}

impl From<&AdjacencyGraph> for CsrGraph {
    fn from(g: &AdjacencyGraph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0);
        for u in g.nodes() {
            targets.extend(g.neighbors(u));
            offsets.push(targets.len());
        }
        CsrGraph {
            offsets,
            targets,
            edge_count: g.edge_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle4() -> CsrGraph {
        CsrGraph::from_edges(
            4,
            vec![
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(2)),
                Edge::new(NodeId(2), NodeId(3)),
                Edge::new(NodeId(3), NodeId(0)),
            ],
        )
    }

    #[test]
    fn counts_match_input() {
        let g = cycle4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = cycle4();
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(3)]);
        assert_eq!(g.degree(NodeId(0)), 2);
    }

    #[test]
    fn has_edge_symmetric() {
        let g = cycle4();
        assert!(g.has_edge(NodeId(3), NodeId(0)));
        assert!(g.has_edge(NodeId(0), NodeId(3)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(9), NodeId(0)));
    }

    #[test]
    fn duplicate_edges_collapsed() {
        let g = CsrGraph::from_edges(
            3,
            vec![
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(0)),
                Edge::new(NodeId(1), NodeId(2)),
            ],
        );
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
    }

    #[test]
    fn conversion_from_adjacency_preserves_edges() {
        let mut a = AdjacencyGraph::new(5);
        a.add_edge(NodeId(0), NodeId(4));
        a.add_edge(NodeId(2), NodeId(3));
        let csr = CsrGraph::from(&a);
        let mut expected: Vec<_> = a.edges().collect();
        let mut got: Vec<_> = csr.edges().collect();
        expected.sort();
        got.sort();
        assert_eq!(expected, got);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, Vec::new());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
