//! Node identifiers.
//!
//! Nodes in the DODA model carry unique identifiers (the paper gives every
//! node `u` an attribute `u.ID`). We model identifiers as a newtype over
//! `usize` so that node ids, times, and counters cannot be mixed up by
//! accident (C-NEWTYPE).

use std::fmt;

/// Identifier of a node in a (dynamic) graph.
///
/// Identifiers are dense: a graph over `n` nodes uses ids `0..n`. The sink
/// is *not* required to be any particular id; the DODA crates carry the sink
/// id explicitly.
///
/// # Example
///
/// ```
/// use doda_graph::NodeId;
///
/// let u = NodeId(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(format!("{u}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// Returns an iterator over the node ids `0..n`.
///
/// # Example
///
/// ```
/// use doda_graph::node::node_range;
///
/// let ids: Vec<_> = node_range(3).collect();
/// assert_eq!(ids.len(), 3);
/// ```
pub fn node_range(n: usize) -> impl Iterator<Item = NodeId> + Clone {
    (0..n).map(NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(42).to_string(), "v42");
        assert_eq!(NodeId(42).index(), 42);
    }

    #[test]
    fn conversions_roundtrip() {
        let id: NodeId = 7usize.into();
        let back: usize = id.into();
        assert_eq!(back, 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5).max(NodeId(3)), NodeId(5));
    }

    #[test]
    fn node_range_yields_dense_ids() {
        let ids: Vec<_> = node_range(4).collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn node_range_empty() {
        assert_eq!(node_range(0).count(), 0);
    }
}
