//! Graph traversals: BFS, DFS, distances and connected components.

use std::collections::VecDeque;

use crate::{AdjacencyGraph, NodeId};

/// Result of a breadth-first search from a single source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// `distance[v] = Some(d)` iff `v` is reachable from the source at hop
    /// distance `d`.
    pub distance: Vec<Option<usize>>,
    /// `parent[v] = Some(u)` iff `u` is the BFS predecessor of `v`;
    /// `None` for the source and for unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// Nodes in the order they were visited (starting with the source).
    pub order: Vec<NodeId>,
}

impl BfsResult {
    /// Returns `true` if `v` was reached by the search.
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.distance.get(v.index()).is_some_and(|d| d.is_some())
    }

    /// Reconstructs the path from the BFS source to `v` (inclusive), or
    /// `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Runs a breadth-first search over `g` from `source`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs(g: &AdjacencyGraph, source: NodeId) -> BfsResult {
    let n = g.node_count();
    assert!(source.index() < n, "BFS source {source} out of range");
    let mut distance = vec![None; n];
    let mut parent = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    distance[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = distance[u.index()].expect("queued nodes have a distance");
        for v in g.neighbors(u) {
            if distance[v.index()].is_none() {
                distance[v.index()] = Some(du + 1);
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    BfsResult {
        distance,
        parent,
        order,
    }
}

/// Runs an iterative depth-first search from `source` and returns the nodes
/// in preorder.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn dfs_preorder(g: &AdjacencyGraph, source: NodeId) -> Vec<NodeId> {
    let n = g.node_count();
    assert!(source.index() < n, "DFS source {source} out of range");
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if visited[u.index()] {
            continue;
        }
        visited[u.index()] = true;
        order.push(u);
        // Push neighbours in reverse order so that smaller ids are visited first.
        let nbrs: Vec<_> = g.neighbors(u).collect();
        for v in nbrs.into_iter().rev() {
            if !visited[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// Returns `true` if `g` is connected (vacuously true for 0 or 1 nodes).
pub fn is_connected(g: &AdjacencyGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    bfs(g, NodeId(0)).order.len() == n
}

/// Returns the connected components of `g`, each sorted by node id, and the
/// list of components sorted by their smallest node id.
pub fn connected_components(g: &AdjacencyGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut component = vec![usize::MAX; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for start in g.nodes() {
        if component[start.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        let res = bfs(g, start);
        let mut members = Vec::new();
        for v in res.order {
            component[v.index()] = id;
            members.push(v);
        }
        members.sort();
        components.push(members);
    }
    components
}

/// Computes the eccentricity of `source` (the greatest hop distance to any
/// reachable node); returns `None` when the graph is disconnected from
/// `source`'s point of view (some node is unreachable) and the graph has
/// more than one node.
pub fn eccentricity(g: &AdjacencyGraph, source: NodeId) -> Option<usize> {
    let res = bfs(g, source);
    if res.distance.iter().any(|d| d.is_none()) {
        return None;
    }
    res.distance.iter().map(|d| d.unwrap_or(0)).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path_graph(5);
        let res = bfs(&g, NodeId(0));
        assert_eq!(res.distance[4], Some(4));
        assert_eq!(res.parent[4], Some(NodeId(3)));
        assert_eq!(res.order[0], NodeId(0));
        assert_eq!(
            res.path_to(NodeId(4)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)])
        );
    }

    #[test]
    fn bfs_unreachable_nodes() {
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        let res = bfs(&g, NodeId(0));
        assert!(!res.is_reachable(NodeId(2)));
        assert_eq!(res.path_to(NodeId(3)), None);
        assert_eq!(res.distance[1], Some(1));
    }

    #[test]
    fn dfs_preorder_visits_all_reachable() {
        let g = generators::star_graph(5);
        let order = dfs_preorder(&g, NodeId(0));
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn dfs_prefers_smaller_ids() {
        let g = generators::star_graph(4);
        let order = dfs_preorder(&g, NodeId(0));
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&generators::cycle_graph(6)));
        assert!(is_connected(&AdjacencyGraph::new(1)));
        assert!(is_connected(&AdjacencyGraph::new(0)));
        let mut g = AdjacencyGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_partition_nodes() {
        let mut g = AdjacencyGraph::new(6);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 4);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn eccentricity_on_path_and_disconnected() {
        let g = generators::path_graph(5);
        assert_eq!(eccentricity(&g, NodeId(0)), Some(4));
        assert_eq!(eccentricity(&g, NodeId(2)), Some(2));
        let mut h = AdjacencyGraph::new(3);
        h.add_edge(NodeId(0), NodeId(1));
        assert_eq!(eccentricity(&h, NodeId(0)), None);
    }
}
