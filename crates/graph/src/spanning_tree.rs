//! Spanning-tree construction.
//!
//! Theorem 4 of the paper relies on every node deterministically computing
//! *the same* spanning tree of the underlying graph `G̅` from the node
//! identifiers alone. [`deterministic_spanning_tree`] provides exactly that
//! (a Kruskal-style scan of edges in canonical id order), while
//! [`bfs_spanning_tree`] produces the shallowest tree rooted at the sink,
//! used as the baseline tree in examples and tests.

use crate::{traversal::bfs, tree::RootedTree, AdjacencyGraph, NodeId, UnionFind};

/// Builds the BFS spanning tree of `g` rooted at `root`.
///
/// Returns `None` if `g` is not connected (some node would be missing from
/// the tree), except for the degenerate single-node graph.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs_spanning_tree(g: &AdjacencyGraph, root: NodeId) -> Option<RootedTree> {
    let res = bfs(g, root);
    if res.order.len() != g.node_count() {
        return None;
    }
    Some(RootedTree::from_parents(root, &res.parent))
}

/// Builds a deterministic spanning tree of `g` rooted at `root` using a
/// Kruskal-style scan of the edges in canonical (id-sorted) order.
///
/// All nodes that share the same view of `G̅` compute the same tree — this
/// is the property required by the algorithm of Theorem 4 of the paper.
/// Returns `None` if `g` is not connected.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn deterministic_spanning_tree(g: &AdjacencyGraph, root: NodeId) -> Option<RootedTree> {
    let n = g.node_count();
    assert!(root.index() < n, "root {root} out of range for {n} nodes");
    let mut uf = UnionFind::new(n);
    let mut forest = AdjacencyGraph::new(n);
    for e in g.edges() {
        if uf.union(e.a, e.b) {
            forest.add_edge(e.a, e.b);
        }
    }
    if !uf.all_connected() && n > 1 {
        return None;
    }
    // Root the forest (now a tree) at `root` via BFS over tree edges only.
    let res = bfs(&forest, root);
    Some(RootedTree::from_parents(root, &res.parent))
}

/// Returns `true` if `tree` is a spanning tree of `g`: it contains every
/// node of `g` and every tree edge is an edge of `g`.
pub fn is_spanning_tree_of(tree: &RootedTree, g: &AdjacencyGraph) -> bool {
    if tree.len() != g.node_count() {
        return false;
    }
    tree.parent_edges().all(|(c, p)| g.has_edge(c, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_tree_on_cycle_is_shallow() {
        let g = generators::cycle_graph(6);
        let t = bfs_spanning_tree(&g, NodeId(0)).unwrap();
        assert_eq!(t.len(), 6);
        assert!(is_spanning_tree_of(&t, &g));
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn bfs_tree_fails_on_disconnected() {
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(bfs_spanning_tree(&g, NodeId(0)).is_none());
        assert!(deterministic_spanning_tree(&g, NodeId(0)).is_none());
    }

    #[test]
    fn deterministic_tree_is_identical_for_all_roots_edgewise() {
        let g = generators::complete_graph(6);
        let t0 = deterministic_spanning_tree(&g, NodeId(0)).unwrap();
        let t3 = deterministic_spanning_tree(&g, NodeId(3)).unwrap();
        // The *edge set* is identical regardless of the root used to orient it.
        let mut e0 = t0.edges();
        let mut e3 = t3.edges();
        e0.sort();
        e3.sort();
        assert_eq!(e0, e3);
        assert!(is_spanning_tree_of(&t0, &g));
        assert!(is_spanning_tree_of(&t3, &g));
    }

    #[test]
    fn deterministic_tree_has_n_minus_1_edges() {
        for n in [2usize, 3, 5, 9, 17] {
            let g = generators::complete_graph(n);
            let t = deterministic_spanning_tree(&g, NodeId(0)).unwrap();
            assert_eq!(t.edges().len(), n - 1);
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn tree_input_is_returned_unchanged_edgewise() {
        let g = generators::path_graph(5);
        let t = deterministic_spanning_tree(&g, NodeId(2)).unwrap();
        let mut edges = t.edges();
        edges.sort();
        let mut expected: Vec<_> = g.edges().collect();
        expected.sort();
        assert_eq!(edges, expected);
        assert_eq!(t.root(), NodeId(2));
    }

    #[test]
    fn single_node_graph() {
        let g = AdjacencyGraph::new(1);
        let t = bfs_spanning_tree(&g, NodeId(0)).unwrap();
        assert_eq!(t.len(), 1);
        assert!(is_spanning_tree_of(&t, &g));
        let t2 = deterministic_spanning_tree(&g, NodeId(0)).unwrap();
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn spanning_tree_check_rejects_foreign_edges() {
        let g = generators::path_graph(4);
        // Star tree rooted at 0 uses the edge 0-2 and 0-3 which path_graph lacks.
        let mut t = RootedTree::new(4, NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(0));
        t.attach(NodeId(3), NodeId(0));
        assert!(!is_spanning_tree_of(&t, &g));
    }
}
