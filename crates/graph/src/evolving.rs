//! Evolving-graph view of an interaction sequence.
//!
//! The paper's dynamic-graph model "is a simplification of the evolving
//! graph model where each static graph has a single edge" (Section 1).
//! [`EvolvingGraph`] gives exactly that view: a sequence of single-edge
//! snapshots indexed by their time of occurrence, plus window operations
//! (the static graph formed by the interactions inside a time window) used
//! by the analysis crate to reason about temporal connectivity.

use crate::{AdjacencyGraph, Edge, NodeId};

/// A finite evolving graph: `n` nodes plus one (optional) edge per time step.
///
/// A `None` snapshot models a time step where the adversary schedules no
/// interaction — the paper's sequences always have an edge at every index,
/// but the generality is convenient for trimming and splicing in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvolvingGraph {
    n: usize,
    snapshots: Vec<Option<Edge>>,
}

impl EvolvingGraph {
    /// Creates an evolving graph over `n` nodes with no snapshots.
    pub fn new(n: usize) -> Self {
        EvolvingGraph {
            n,
            snapshots: Vec::new(),
        }
    }

    /// Builds an evolving graph from a sequence of interaction pairs, one
    /// per time step starting at time 0.
    ///
    /// # Panics
    ///
    /// Panics if a pair has out-of-range or equal endpoints.
    pub fn from_pairs<I>(n: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let snapshots = pairs
            .into_iter()
            .map(|(u, v)| {
                assert!(
                    u.index() < n && v.index() < n,
                    "interaction {u}-{v} out of range for {n} nodes"
                );
                Some(Edge::new(u, v))
            })
            .collect();
        EvolvingGraph { n, snapshots }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of time steps (snapshots), including empty ones.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Returns `true` if there are no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Appends a snapshot containing the single edge `{u, v}`.
    pub fn push_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "interaction {u}-{v} out of range for {} nodes",
            self.n
        );
        self.snapshots.push(Some(Edge::new(u, v)));
    }

    /// Appends an empty snapshot (no interaction at this time step).
    pub fn push_empty(&mut self) {
        self.snapshots.push(None);
    }

    /// The edge present at time `t`, if any (and if `t` is within range).
    pub fn edge_at(&self, t: usize) -> Option<Edge> {
        self.snapshots.get(t).copied().flatten()
    }

    /// Iterates over `(time, edge)` for the non-empty snapshots.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Edge)> + '_ {
        self.snapshots
            .iter()
            .enumerate()
            .filter_map(|(t, e)| e.map(|e| (t, e)))
    }

    /// The static graph formed by all interactions in the half-open time
    /// window `[from, to)` (clamped to the sequence length).
    pub fn window_graph(&self, from: usize, to: usize) -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new(self.n);
        let to = to.min(self.snapshots.len());
        if from >= to {
            return g;
        }
        for e in self.snapshots[from..to].iter().flatten() {
            g.add_edge(e.a, e.b);
        }
        g
    }

    /// The underlying graph `G̅` (union of all snapshots).
    pub fn underlying(&self) -> AdjacencyGraph {
        self.window_graph(0, self.snapshots.len())
    }

    /// Times at which node `u` is involved in an interaction, in order.
    pub fn times_involving(&self, u: NodeId) -> Vec<usize> {
        self.iter()
            .filter(|(_, e)| e.contains(u))
            .map(|(t, _)| t)
            .collect()
    }

    /// The evolving-graph → round-stream bridge: chops the snapshot
    /// sequence into consecutive windows of `window` time steps and
    /// extracts the deterministic [`maximal_matching`] of each window's
    /// static graph — one matching per window, i.e. one synchronous round
    /// per window.
    ///
    /// The paper's model is the single-edge specialisation of the evolving
    /// graph model; the round model of `doda-core` is the other direction
    /// (many disjoint edges live at once), and this is the sanctioned way
    /// to turn a recorded evolving graph into a round schedule. A window
    /// whose graph has no edges yields an empty round.
    ///
    /// [`maximal_matching`]: crate::matching::maximal_matching
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn window_matchings(&self, window: usize) -> Vec<Vec<Edge>> {
        self.window_matching_rounds(window).collect()
    }

    /// Streaming variant of [`window_matchings`]: yields one matching per
    /// window lazily, so consuming a long evolving graph round by round
    /// holds only the current window's `O(n + window)` scratch in memory —
    /// never the `O(n · horizon)` of the materialised round list. This is
    /// the bridge large-n round sweeps use.
    ///
    /// [`window_matchings`]: EvolvingGraph::window_matchings
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn window_matching_rounds(&self, window: usize) -> impl Iterator<Item = Vec<Edge>> + '_ {
        assert!(window > 0, "the matching window must be at least 1 step");
        (0..self.snapshots.len()).step_by(window).map(move |from| {
            crate::matching::maximal_matching(&self.window_graph(from, from + window))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EvolvingGraph {
        EvolvingGraph::from_pairs(
            4,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(0), NodeId(1)),
            ],
        )
    }

    #[test]
    fn construction_and_lookup() {
        let eg = sample();
        assert_eq!(eg.len(), 4);
        assert_eq!(eg.node_count(), 4);
        assert_eq!(eg.edge_at(1), Some(Edge::new(NodeId(1), NodeId(2))));
        assert_eq!(eg.edge_at(10), None);
    }

    #[test]
    fn empty_snapshots_are_skipped_by_iter() {
        let mut eg = EvolvingGraph::new(3);
        eg.push_edge(NodeId(0), NodeId(1));
        eg.push_empty();
        eg.push_edge(NodeId(1), NodeId(2));
        assert_eq!(eg.len(), 3);
        let times: Vec<_> = eg.iter().map(|(t, _)| t).collect();
        assert_eq!(times, vec![0, 2]);
        assert_eq!(eg.edge_at(1), None);
    }

    #[test]
    fn window_graph_respects_bounds() {
        let eg = sample();
        let w = eg.window_graph(1, 3);
        assert_eq!(w.edge_count(), 2);
        assert!(w.has_edge(NodeId(1), NodeId(2)));
        assert!(w.has_edge(NodeId(2), NodeId(3)));
        assert!(!w.has_edge(NodeId(0), NodeId(1)));
        // Degenerate / clamped windows.
        assert_eq!(eg.window_graph(3, 3).edge_count(), 0);
        assert_eq!(eg.window_graph(2, 100).edge_count(), 2);
        assert_eq!(eg.window_graph(5, 2).edge_count(), 0);
    }

    #[test]
    fn underlying_deduplicates() {
        let eg = sample();
        let g = eg.underlying();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn times_involving_a_node() {
        let eg = sample();
        assert_eq!(eg.times_involving(NodeId(1)), vec![0, 1, 3]);
        assert_eq!(eg.times_involving(NodeId(3)), vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pair_panics() {
        let _ = EvolvingGraph::from_pairs(2, vec![(NodeId(0), NodeId(5))]);
    }

    #[test]
    fn window_matchings_extract_one_matching_per_window() {
        let eg = sample(); // 4 snapshots over 4 nodes
        let rounds = eg.window_matchings(2);
        assert_eq!(rounds.len(), 2);
        for round in &rounds {
            assert!(crate::matching::is_matching(4, round));
            assert!(!round.is_empty());
        }
        // Window 0 covers {0,1} and {1,2} (share node 1): one survives;
        // window 1 covers {2,3} and {0,1}: disjoint, both survive.
        assert_eq!(rounds[0].len(), 1);
        assert_eq!(rounds[1].len(), 2);
        // One big window degenerates to the underlying graph's matching.
        assert_eq!(
            eg.window_matchings(100),
            vec![crate::matching::maximal_matching(&eg.underlying())]
        );
    }

    #[test]
    fn window_matchings_keep_empty_windows_as_empty_rounds() {
        let mut eg = EvolvingGraph::new(3);
        eg.push_empty();
        eg.push_empty();
        eg.push_edge(NodeId(0), NodeId(1));
        let rounds = eg.window_matchings(2);
        assert_eq!(rounds.len(), 2);
        assert!(rounds[0].is_empty());
        assert_eq!(rounds[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1 step")]
    fn zero_window_is_rejected() {
        let _ = sample().window_matchings(0);
    }

    #[test]
    fn streaming_window_matchings_match_the_materialized_list() {
        let eg = sample();
        for window in [1, 2, 3, 100] {
            let streamed: Vec<_> = eg.window_matching_rounds(window).collect();
            assert_eq!(streamed, eg.window_matchings(window), "window {window}");
        }
        // The iterator is lazy: pulling one round never builds the rest.
        let mut rounds = eg.window_matching_rounds(2);
        assert_eq!(rounds.next().unwrap().len(), 1);
    }
}
