//! Disjoint-set forest (union–find).
//!
//! Used to detect connectivity incrementally while scanning an interaction
//! sequence — e.g. to find the shortest prefix of a sequence whose
//! underlying graph is connected, or to build spanning trees Kruskal-style
//! in interaction-time order.

use crate::NodeId;

/// A disjoint-set forest over nodes `0..n` with path compression and
/// union by rank.
///
/// # Example
///
/// ```
/// use doda_graph::{NodeId, UnionFind};
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(NodeId(0), NodeId(1)));
/// assert!(uf.union(NodeId(2), NodeId(3)));
/// assert!(!uf.same_set(NodeId(0), NodeId(3)));
/// assert!(uf.union(NodeId(1), NodeId(3)));
/// assert!(uf.same_set(NodeId(0), NodeId(2)));
/// assert_eq!(uf.set_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates a forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently in the forest.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: NodeId) -> NodeId {
        let mut root = x.index();
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x.index();
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        NodeId(root)
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> bool {
        let ra = self.find(a).index();
        let rb = self.find(b).index();
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: NodeId, b: NodeId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Returns `true` if all elements are in a single set (vacuously true
    /// for 0 or 1 elements).
    pub fn all_connected(&self) -> bool {
        self.sets <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        assert!(!uf.same_set(NodeId(0), NodeId(1)));
        assert_eq!(uf.find(NodeId(2)), NodeId(2));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(NodeId(0), NodeId(1)));
        assert!(uf.union(NodeId(1), NodeId(2)));
        assert!(!uf.union(NodeId(0), NodeId(2)));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same_set(NodeId(0), NodeId(2)));
        assert!(!uf.all_connected());
    }

    #[test]
    fn all_connected_after_spanning_unions() {
        let mut uf = UnionFind::new(4);
        uf.union(NodeId(0), NodeId(1));
        uf.union(NodeId(1), NodeId(2));
        uf.union(NodeId(2), NodeId(3));
        assert!(uf.all_connected());
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn empty_and_single_are_connected() {
        assert!(UnionFind::new(0).all_connected());
        assert!(UnionFind::new(1).all_connected());
        assert!(UnionFind::new(0).is_empty());
    }

    #[test]
    fn path_compression_keeps_results_consistent() {
        let mut uf = UnionFind::new(64);
        for i in 0..63 {
            uf.union(NodeId(i), NodeId(i + 1));
        }
        for i in 0..64 {
            assert!(uf.same_set(NodeId(0), NodeId(i)));
        }
        assert_eq!(uf.set_count(), 1);
    }
}
