//! Graph substrate for the DODA (Distributed Online Data Aggregation)
//! reproduction.
//!
//! The paper "Distributed Online Data Aggregation in Dynamic Graphs"
//! (Bramas, Masuzawa, Tixeuil, ICDCS 2016) models a dynamic graph as a set
//! of nodes together with a sequence of pairwise interactions. Several of
//! its results refer to *static* graph notions derived from that sequence:
//!
//! * the **underlying graph** `G̅`, whose edges are the pairs of nodes that
//!   interact at least once (Section 3.2 of the paper);
//! * **spanning trees** of `G̅`, used by the algorithm of Theorems 4 and 5;
//! * the **evolving graph** view, a sequence of single-edge snapshots.
//!
//! This crate provides those notions from scratch (no external graph
//! library): adjacency-set and CSR graph representations, traversals,
//! connectivity, union-find, deterministic spanning trees, rooted-tree
//! utilities and a family of graph generators used by tests, examples and
//! benchmarks.
//!
//! # Example
//!
//! ```
//! use doda_graph::{AdjacencyGraph, NodeId, spanning_tree::bfs_spanning_tree};
//!
//! let mut g = AdjacencyGraph::new(4);
//! g.add_edge(NodeId(0), NodeId(1));
//! g.add_edge(NodeId(1), NodeId(2));
//! g.add_edge(NodeId(2), NodeId(3));
//! g.add_edge(NodeId(3), NodeId(0));
//!
//! let tree = bfs_spanning_tree(&g, NodeId(0)).expect("graph is connected");
//! assert_eq!(tree.len(), 4);
//! assert_eq!(tree.root(), NodeId(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adjacency;
pub mod csr;
pub mod evolving;
pub mod generators;
pub mod matching;
pub mod node;
pub mod spanning_tree;
pub mod traversal;
pub mod tree;
pub mod underlying;
pub mod union_find;

pub use adjacency::AdjacencyGraph;
pub use csr::CsrGraph;
pub use evolving::EvolvingGraph;
pub use matching::{is_matching, maximal_matching};
pub use node::NodeId;
pub use tree::RootedTree;
pub use underlying::underlying_graph;
pub use union_find::UnionFind;

/// An undirected edge between two nodes, stored in canonical (min, max) order.
///
/// Self-loops are not representable through [`Edge::new`], which panics on
/// equal endpoints; the DODA model never produces them (an interaction is a
/// pair of *distinct* nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// The smaller endpoint.
    pub a: NodeId,
    /// The larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a canonical edge from two distinct endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops are not part of the interaction model).
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert!(u != v, "self-loop edge {u:?} is not allowed");
        if u < v {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// Returns the endpoint opposite to `x`, or `None` if `x` is not an endpoint.
    pub fn other(&self, x: NodeId) -> Option<NodeId> {
        if x == self.a {
            Some(self.b)
        } else if x == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns `true` if `x` is one of the endpoints.
    pub fn contains(&self, x: NodeId) -> bool {
        x == self.a || x == self.b
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((u, v): (NodeId, NodeId)) -> Self {
        Edge::new(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonical() {
        let e1 = Edge::new(NodeId(3), NodeId(1));
        let e2 = Edge::new(NodeId(1), NodeId(3));
        assert_eq!(e1, e2);
        assert_eq!(e1.a, NodeId(1));
        assert_eq!(e1.b, NodeId(3));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId(2), NodeId(2));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(NodeId(0), NodeId(5));
        assert_eq!(e.other(NodeId(0)), Some(NodeId(5)));
        assert_eq!(e.other(NodeId(5)), Some(NodeId(0)));
        assert_eq!(e.other(NodeId(3)), None);
        assert!(e.contains(NodeId(0)));
        assert!(!e.contains(NodeId(1)));
    }

    #[test]
    fn edge_from_tuple() {
        let e: Edge = (NodeId(7), NodeId(2)).into();
        assert_eq!(e, Edge::new(NodeId(2), NodeId(7)));
    }
}
