//! Pairwise algorithm comparison across node counts.

use crate::scaling::ScalingResult;

/// Pairwise comparison of two scaling results at each measured `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Label of the first algorithm.
    pub a: String,
    /// Label of the second algorithm.
    pub b: String,
    /// `(n, mean_a / mean_b)` per node count common to both results.
    pub ratios: Vec<(usize, f64)>,
}

impl Comparison {
    /// Builds the comparison from two scaling results.
    pub fn between(a: &ScalingResult, b: &ScalingResult) -> Self {
        let ratios = a
            .points
            .iter()
            .filter_map(|pa| {
                b.points
                    .iter()
                    .find(|pb| pb.n == pa.n)
                    .map(|pb| (pa.n, pa.mean_interactions / pb.mean_interactions))
            })
            .collect();
        Comparison {
            a: a.algorithm.clone(),
            b: b.algorithm.clone(),
            ratios,
        }
    }

    /// Returns `true` if `a` is strictly faster (fewer interactions) than
    /// `b` at every measured `n`.
    pub fn a_always_wins(&self) -> bool {
        !self.ratios.is_empty() && self.ratios.iter().all(|&(_, r)| r < 1.0)
    }

    /// Returns `true` if the ratio `mean_a / mean_b` decreases as `n` grows
    /// (i.e. `a`'s advantage widens with scale).
    pub fn advantage_grows_with_n(&self) -> bool {
        self.ratios.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9)
    }

    /// The node count at which the winner changes, if any (the first `n`
    /// where the ratio crosses 1 relative to the previous point).
    pub fn crossover_n(&self) -> Option<usize> {
        self.ratios
            .windows(2)
            .find(|w| (w[0].1 < 1.0) != (w[1].1 < 1.0))
            .map(|w| w[1].0)
    }
}

/// Checks that the measured mean interaction counts respect a total order
/// of algorithms at every `n`: `results[0] ≤ results[1] ≤ …`.
pub fn ordering_holds_everywhere(results: &[ScalingResult]) -> bool {
    results.windows(2).all(|pair| {
        Comparison::between(&pair[0], &pair[1])
            .ratios
            .iter()
            .all(|&(_, r)| r <= 1.0 + 1e-9)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::ScalingPoint;

    fn result(label: &str, means: &[(usize, f64)]) -> ScalingResult {
        ScalingResult {
            algorithm: label.to_string(),
            points: means
                .iter()
                .map(|&(n, m)| ScalingPoint {
                    n,
                    mean_interactions: m,
                    median_interactions: m,
                    completion_rate: 1.0,
                })
                .collect(),
            fit: None,
        }
    }

    #[test]
    fn ratios_and_winner() {
        let fast = result("fast", &[(8, 10.0), (16, 20.0), (32, 40.0)]);
        let slow = result("slow", &[(8, 20.0), (16, 80.0), (32, 320.0)]);
        let cmp = Comparison::between(&fast, &slow);
        assert_eq!(cmp.ratios.len(), 3);
        assert!(cmp.a_always_wins());
        assert!(cmp.advantage_grows_with_n());
        assert_eq!(cmp.crossover_n(), None);
    }

    #[test]
    fn crossover_detection() {
        let a = result("a", &[(8, 10.0), (16, 30.0), (32, 100.0)]);
        let b = result("b", &[(8, 20.0), (16, 25.0), (32, 30.0)]);
        let cmp = Comparison::between(&a, &b);
        assert!(!cmp.a_always_wins());
        assert_eq!(cmp.crossover_n(), Some(16));
    }

    #[test]
    fn ordering_check() {
        let a = result("a", &[(8, 10.0), (16, 20.0)]);
        let b = result("b", &[(8, 15.0), (16, 40.0)]);
        let c = result("c", &[(8, 30.0), (16, 35.0)]);
        assert!(ordering_holds_everywhere(&[a.clone(), b.clone()]));
        assert!(!ordering_holds_everywhere(&[b, c.clone()]));
        assert!(ordering_holds_everywhere(&[a]));
    }

    #[test]
    fn mismatched_ns_are_skipped() {
        let a = result("a", &[(8, 10.0), (64, 100.0)]);
        let b = result("b", &[(8, 20.0), (32, 50.0)]);
        let cmp = Comparison::between(&a, &b);
        assert_eq!(cmp.ratios, vec![(8, 0.5)]);
    }
}
