//! Rendering of experiment reports.

use doda_sim::table::Table;

use crate::experiments::ExperimentReport;
use crate::scaling::ScalingResult;

/// Renders the experiment reports as the Markdown table used in
/// EXPERIMENTS.md.
pub fn reports_to_markdown(reports: &[ExperimentReport]) -> String {
    let mut table = Table::new(["id", "result", "paper claim", "measured", "status"]);
    for r in reports {
        table.push_row([
            r.id.clone(),
            r.title.clone(),
            r.paper_claim.clone(),
            r.measured.clone(),
            if r.passed {
                "consistent".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    table.to_markdown()
}

/// Renders a set of scaling results (one line per algorithm and `n`) as a
/// Markdown table — the "headline figure" of the reproduction.
pub fn scaling_to_markdown(results: &[ScalingResult]) -> String {
    let mut table = Table::new([
        "algorithm",
        "n",
        "mean interactions",
        "median",
        "completion rate",
    ]);
    for r in results {
        for p in &r.points {
            table.push_row([
                r.algorithm.clone(),
                p.n.to_string(),
                format!("{:.1}", p.mean_interactions),
                format!("{:.1}", p.median_interactions),
                format!("{:.2}", p.completion_rate),
            ]);
        }
    }
    table.to_markdown()
}

/// Renders the fitted exponents of a set of scaling results.
pub fn exponents_to_markdown(results: &[ScalingResult]) -> String {
    let mut table = Table::new(["algorithm", "fitted exponent", "R²"]);
    for r in results {
        if let Some(fit) = r.fit {
            table.push_row([
                r.algorithm.clone(),
                format!("{:.3}", fit.exponent),
                format!("{:.4}", fit.r_squared),
            ]);
        }
    }
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::ScalingPoint;
    use doda_stats::regression::PowerLawFit;

    #[test]
    fn reports_render_with_status() {
        let reports = vec![
            ExperimentReport {
                id: "E1".into(),
                title: "t".into(),
                paper_claim: "c".into(),
                measured: "m".into(),
                passed: true,
            },
            ExperimentReport {
                id: "E2".into(),
                title: "t2".into(),
                paper_claim: "c2".into(),
                measured: "m2".into(),
                passed: false,
            },
        ];
        let md = reports_to_markdown(&reports);
        assert!(md.contains("consistent"));
        assert!(md.contains("MISMATCH"));
        assert!(md.contains("E1"));
    }

    #[test]
    fn scaling_and_exponent_rendering() {
        let results = vec![ScalingResult {
            algorithm: "Gathering".into(),
            points: vec![ScalingPoint {
                n: 8,
                mean_interactions: 49.0,
                median_interactions: 48.0,
                completion_rate: 1.0,
            }],
            fit: Some(PowerLawFit {
                constant: 1.0,
                exponent: 2.0,
                r_squared: 0.999,
            }),
        }];
        let scaling = scaling_to_markdown(&results);
        assert!(scaling.contains("Gathering"));
        assert!(scaling.contains("49.0"));
        let exponents = exponents_to_markdown(&results);
        assert!(exponents.contains("2.000"));
    }
}
