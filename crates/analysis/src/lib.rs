//! Experiment harness for the DODA reproduction.
//!
//! The paper has no tables or figures — its evaluation is a collection of
//! theorems. This crate turns each theorem into an *experiment* that can be
//! run, measured and compared against the theorem's claim:
//!
//! * [`scaling`] — sweeps the node count `n`, measures interaction counts
//!   and fits power laws, so that "Gathering is `Θ(n²)`" becomes a checkable
//!   statement about a fitted exponent;
//! * [`whp`] — measures the fraction of trials that finish within a bound,
//!   the empirical counterpart of "with high probability";
//! * [`crossover`] — compares algorithms pairwise across `n`;
//! * [`experiments`] — one self-contained function per theorem (E1–E12),
//!   each returning an [`experiments::ExperimentReport`];
//! * [`report`] — renders the collected reports as the Markdown used in
//!   EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crossover;
pub mod experiments;
pub mod report;
pub mod scaling;
pub mod whp;

pub use experiments::ExperimentReport;
pub use scaling::{ScalingPoint, ScalingResult, ScalingStudy};
