//! The per-theorem experiment index (E1–E15).
//!
//! Each function reproduces one result of the paper as a finite-`n`
//! experiment and returns an [`ExperimentReport`] comparing the paper's
//! claim with what was measured. `EXPERIMENTS.md` is generated from these
//! reports (see [`crate::report`]), and the Criterion benches in
//! `crates/bench` re-run the heavier ones with larger parameters.
//!
//! Adversarial sources are pulled from the unified
//! [`doda_sim::Scenario`] registry where a sweepable scenario exists;
//! the fixed-`n` trap constructions of Theorems 1 and 3 keep using their
//! bespoke types.

use doda_adversary::{AdaptiveTrap, CycleTrap};
use doda_core::cost::{cost_of_duration, Cost};
use doda_core::prelude::*;
use doda_graph::NodeId;
use doda_sim::{AlgorithmSpec, BatchConfig, Scenario, Sweep};
use doda_stats::harmonic;
use doda_workloads::{TreeRestrictedWorkload, UniformWorkload, Workload};

use crate::crossover::ordering_holds_everywhere;
use crate::scaling::ScalingStudy;
use crate::whp::check_within_bound;

/// How much compute to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small parameters, suitable for unit tests and quick smoke runs.
    Quick,
    /// The parameters used for EXPERIMENTS.md and the benchmark harness.
    Full,
}

/// The outcome of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id (`"E1"` … `"E12"`).
    pub id: String,
    /// Short title.
    pub title: String,
    /// The paper's claim being reproduced.
    pub paper_claim: String,
    /// What was measured.
    pub measured: String,
    /// Whether the measurement is consistent with the claim.
    pub passed: bool,
}

fn report(id: &str, title: &str, claim: &str, measured: String, passed: bool) -> ExperimentReport {
    ExperimentReport {
        id: id.to_string(),
        title: title.to_string(),
        paper_claim: claim.to_string(),
        measured,
        passed,
    }
}

fn run_against_trap<S>(source: &mut S, spec: AlgorithmSpec, sink: NodeId, horizon: u64) -> bool
where
    S: InteractionSource + ?Sized,
{
    // Knowledge-free algorithms run streamed against the live adversary —
    // no sequence, no oracles.
    let mut algo = spec
        .instantiate_online()
        .expect("knowledge-free algorithms instantiate without a sequence");
    let outcome =
        engine::run_with_id_sets(algo.as_mut(), source, sink, EngineConfig::sweep(horizon))
            .expect("algorithms never emit invalid decisions");
    outcome.terminated()
}

/// E1 — Theorem 1: against the online adaptive adversary no algorithm
/// terminates, while convergecasts remain possible (`cost = ∞`).
pub fn e1_adaptive_adversary(effort: Effort) -> ExperimentReport {
    let horizon = match effort {
        Effort::Quick => 2_000,
        Effort::Full => 100_000,
    };
    let mut any_terminated = false;
    for spec in [AlgorithmSpec::Waiting, AlgorithmSpec::Gathering] {
        let mut trap = AdaptiveTrap::new();
        if run_against_trap(&mut trap, spec, AdaptiveTrap::SINK, horizon) {
            any_terminated = true;
        }
    }
    // Convergecasts remain possible on the sequence the trap plays against
    // Gathering (materialised by replaying the deterministic interplay).
    let seq = materialize_adaptive_trap_vs_gathering(horizon.min(5_000));
    let convergecasts = convergecast::successive_convergecast_times(&seq, AdaptiveTrap::SINK, 64);
    let passed = !any_terminated && convergecasts.len() >= 64;
    report(
        "E1",
        "Adaptive adversary defeats every algorithm",
        "Theorem 1: for every algorithm there is an adaptive adversary with cost_A(I) = ∞",
        format!(
            "Waiting/Gathering never terminated within {horizon} interactions; {} successive convergecasts remained possible",
            convergecasts.len()
        ),
        passed,
    )
}

/// Replays the deterministic AdaptiveTrap-vs-Gathering interplay and
/// returns the sequence the adversary produced.
fn materialize_adaptive_trap_vs_gathering(horizon: u64) -> InteractionSequence {
    let mut trap = AdaptiveTrap::new();
    let mut algo = Gathering::new();
    let mut owns = vec![true; 3];
    let mut seq = InteractionSequence::new(3);
    for t in 0..horizon {
        let view = AdversaryView {
            owns_data: &owns,
            sink: AdaptiveTrap::SINK,
        };
        let Some(interaction) = doda_core::InteractionSource::next_interaction(&mut trap, t, &view)
        else {
            break;
        };
        seq.push(interaction);
        let ctx = InteractionContext {
            time: t,
            interaction,
            min_owns_data: owns[interaction.min().index()],
            max_owns_data: owns[interaction.max().index()],
            sink: AdaptiveTrap::SINK,
        };
        if let Decision::Transmit { sender, .. } = algo.decide(&ctx) {
            if ctx.both_own_data() && sender != AdaptiveTrap::SINK {
                owns[sender.index()] = false;
            }
        }
    }
    seq
}

/// E2 — Theorem 2: the oblivious star-then-ring construction defeats the
/// oblivious knowledge-free algorithms. The trap is drawn from the
/// unified scenario registry ([`Scenario::ObliviousTrap`]).
pub fn e2_oblivious_trap(effort: Effort) -> ExperimentReport {
    let (n, horizon) = match effort {
        Effort::Quick => (8, 20_000),
        Effort::Full => (32, 500_000),
    };
    let sink = NodeId(0);
    let mut any_terminated = false;
    for spec in [AlgorithmSpec::Waiting, AlgorithmSpec::Gathering] {
        let mut adversary = Scenario::ObliviousTrap.source(n, 0);
        if run_against_trap(adversary.as_mut(), spec, sink, horizon) {
            any_terminated = true;
        }
    }
    let seq = Scenario::ObliviousTrap
        .materialize(n, 4_000, 0)
        .expect("the oblivious trap is not adaptive");
    let convergecasts = convergecast::successive_convergecast_times(&seq, sink, 32);
    let passed = !any_terminated && convergecasts.len() >= 32;
    report(
        "E2",
        "Oblivious adversary defeats oblivious algorithms",
        "Theorem 2: an oblivious adversary makes cost_A(I) = ∞ w.h.p. for oblivious randomized algorithms",
        format!(
            "n = {n}: Waiting/Gathering never terminated within {horizon} interactions; {} successive convergecasts remained possible",
            convergecasts.len()
        ),
        passed,
    )
}

/// E3 — Theorem 3: knowing the underlying graph (a 4-cycle) is not enough.
pub fn e3_cycle_trap(effort: Effort) -> ExperimentReport {
    let horizon = match effort {
        Effort::Quick => 2_000,
        Effort::Full => 100_000,
    };
    let underlying = CycleTrap::underlying_graph();
    let mut spanning = SpanningTreeAggregation::from_underlying_graph(&underlying, CycleTrap::SINK)
        .expect("the 4-cycle is connected");
    let mut trap = CycleTrap::new();
    let outcome = engine::run_with_id_sets(
        &mut spanning,
        &mut trap,
        CycleTrap::SINK,
        EngineConfig::sweep(horizon),
    )
    .expect("valid decisions");
    let mut gathering_trap = CycleTrap::new();
    let gathering_terminated = run_against_trap(
        &mut gathering_trap,
        AlgorithmSpec::Gathering,
        CycleTrap::SINK,
        horizon,
    );
    let passed = !outcome.terminated() && !gathering_terminated;
    report(
        "E3",
        "Underlying-graph knowledge is insufficient (n ≥ 4)",
        "Theorem 3: with G̅ known (a 4-cycle) an adaptive adversary still forces cost_A(I) = ∞",
        format!(
            "spanning-tree and Gathering both failed to terminate within {horizon} interactions on the 4-cycle trap"
        ),
        passed,
    )
}

/// E4 — Theorem 4: with recurring interactions and `G̅` known, the
/// spanning-tree algorithm has finite but *unbounded* cost.
pub fn e4_recurring_edges(effort: Effort) -> ExperimentReport {
    let delays: Vec<usize> = match effort {
        Effort::Quick => vec![2, 6],
        Effort::Full => vec![2, 6, 12, 24],
    };
    // Underlying graph: the 4-cycle. The deterministic spanning tree keeps
    // edges (0,1), (0,3), (1,2); the alternative tree (0,1), (1,2), (2,3)
    // supports one convergecast per block below.
    let block: Vec<(usize, usize)> = vec![(2, 3), (1, 2), (0, 1)];
    let mut costs = Vec::new();
    let mut all_finite = true;
    for &delay in &delays {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for _ in 0..3 {
            for _ in 0..delay {
                pairs.extend_from_slice(&block);
            }
            pairs.push((0, 3));
        }
        let seq = InteractionSequence::from_pairs(4, pairs);
        let underlying = seq.underlying_graph();
        let mut algo = SpanningTreeAggregation::from_underlying_graph(&underlying, NodeId(0))
            .expect("cycle is connected");
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::sweep_default(),
        )
        .expect("valid decisions");
        let cost = cost_of_duration(&seq, NodeId(0), outcome.termination_time, 1_000);
        match cost {
            Cost::Finite(c) => costs.push(c),
            Cost::ExceedsHorizon { .. } => all_finite = false,
        }
    }
    let grows = costs.windows(2).all(|w| w[1] >= w[0]) && costs.last() > costs.first();
    let passed = all_finite && grows && costs.iter().all(|&c| c >= 1);
    report(
        "E4",
        "Recurring interactions: finite but unbounded cost with G̅",
        "Theorem 4: cost_A(I) < ∞ when every interaction recurs, but cost_A(I) is unbounded over sequences",
        format!("delays {delays:?} produced costs {costs:?} (finite, growing with the delay)"),
        passed,
    )
}

/// E5 — Theorem 5: when `G̅` is a tree the spanning-tree algorithm is optimal.
pub fn e5_tree_underlying(effort: Effort) -> ExperimentReport {
    let (n, seeds) = match effort {
        Effort::Quick => (8, 5u64),
        Effort::Full => (16, 20u64),
    };
    let workload = TreeRestrictedWorkload::random_tree(n);
    let mut all_optimal = true;
    let mut costs = Vec::new();
    for seed in 0..seeds {
        let seq = workload.generate(40 * n, seed);
        let underlying = seq.underlying_graph();
        let Some(mut algo) = SpanningTreeAggregation::from_underlying_graph(&underlying, NodeId(0))
        else {
            // The random sequence did not expose every tree edge: skip.
            continue;
        };
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::sweep_default(),
        )
        .expect("valid decisions");
        let cost = cost_of_duration(&seq, NodeId(0), outcome.termination_time, 200);
        if !cost.is_optimal() {
            all_optimal = false;
        }
        costs.push(cost);
    }
    let passed = all_optimal && !costs.is_empty();
    report(
        "E5",
        "Tree underlying graph: spanning-tree algorithm is optimal",
        "Theorem 5: if G̅ is a tree, the algorithm achieves cost_A(I) = 1",
        format!(
            "{} tree-restricted sequences, costs = {costs:?}",
            costs.len()
        ),
        passed,
    )
}

/// E6 — Theorem 6: with own-future knowledge, cost ≤ n on every sequence.
pub fn e6_future_knowledge(effort: Effort) -> ExperimentReport {
    let (n, seeds) = match effort {
        Effort::Quick => (8, 5u64),
        Effort::Full => (16, 20u64),
    };
    let workload = UniformWorkload::new(n);
    let mut max_cost = 0u64;
    let mut all_within = true;
    for seed in 0..seeds {
        let seq = workload.generate(8 * n * n, seed);
        let mut algo = FutureBroadcast::new(&seq, NodeId(0));
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::sweep_default(),
        )
        .expect("valid decisions");
        match cost_of_duration(&seq, NodeId(0), outcome.termination_time, 4 * n as u64) {
            Cost::Finite(c) => {
                max_cost = max_cost.max(c);
                if c > n as u64 {
                    all_within = false;
                }
            }
            Cost::ExceedsHorizon { .. } => all_within = false,
        }
    }
    report(
        "E6",
        "Own-future knowledge: cost at most n",
        "Theorem 6: there is an algorithm in DODA(future) with cost_A(I) ≤ n for every I",
        format!(
            "n = {n}, {seeds} random sequences: maximum observed cost = {max_cost} (bound n = {n})"
        ),
        all_within,
    )
}

/// E7 — Theorem 7: without knowledge, `Ω(n²)` interactions are required;
/// Gathering matches the bound (its mean is `(n−1)²`, exponent ≈ 2).
pub fn e7_lower_bound(effort: Effort) -> ExperimentReport {
    let study = match effort {
        Effort::Quick => ScalingStudy::quick(),
        Effort::Full => ScalingStudy::benchmark(),
    };
    let result = study.run(AlgorithmSpec::Gathering);
    let exponent = result.exponent().unwrap_or(f64::NAN);
    // Compare the largest measured point against the exact expectation (n−1)².
    let last = result.points.last().expect("study has points");
    let expected = harmonic::expected_gathering_interactions(last.n);
    let ratio = last.mean_interactions / expected;
    let passed = (1.6..=2.4).contains(&exponent) && (0.7..=1.4).contains(&ratio);
    report(
        "E7",
        "Ω(n²) lower bound without knowledge (Gathering matches)",
        "Theorem 7: expected interactions are Ω(n²); Gathering needs (n−1)² in expectation",
        format!(
            "fitted exponent {exponent:.2} (expect ≈ 2); mean at n = {} is {:.0} vs (n−1)² = {:.0} (ratio {ratio:.2})",
            last.n, last.mean_interactions, expected
        ),
        passed,
    )
}

/// E8 — Theorem 8 / Corollary 1: with full knowledge, `Θ(n log n)`.
pub fn e8_full_knowledge(effort: Effort) -> ExperimentReport {
    let study = match effort {
        Effort::Quick => ScalingStudy::quick(),
        Effort::Full => ScalingStudy::benchmark(),
    };
    let result = study.run(AlgorithmSpec::OfflineOptimal);
    let exponent_with_log = result
        .fit_with_log_factor(1.0)
        .map(|f| f.exponent)
        .unwrap_or(f64::NAN);
    let last = result.points.last().expect("study has points");
    let expected = harmonic::expected_full_knowledge_interactions(last.n);
    let ratio = last.mean_interactions / expected;
    let passed = (0.8..=1.25).contains(&exponent_with_log) && (0.7..=1.4).contains(&ratio);
    report(
        "E8",
        "Θ(n log n) with full knowledge",
        "Theorem 8: the best algorithm with full knowledge terminates in Θ(n log n) interactions (expectation (n−1)·H(n−1))",
        format!(
            "exponent after removing the log factor: {exponent_with_log:.2} (expect ≈ 1); mean at n = {} is {:.0} vs (n−1)H(n−1) = {:.0} (ratio {ratio:.2})",
            last.n, last.mean_interactions, expected
        ),
        passed,
    )
}

/// E9 — Theorem 9: Waiting is `O(n² log n)`, Gathering is `O(n²)`.
pub fn e9_waiting_gathering(effort: Effort) -> ExperimentReport {
    let study = match effort {
        Effort::Quick => ScalingStudy::quick(),
        Effort::Full => ScalingStudy::benchmark(),
    };
    let waiting = study.run(AlgorithmSpec::Waiting);
    let gathering = study.run(AlgorithmSpec::Gathering);
    let last_w = waiting.points.last().expect("points");
    let last_g = gathering.points.last().expect("points");
    let expected_w = harmonic::expected_waiting_interactions(last_w.n);
    let expected_g = harmonic::expected_gathering_interactions(last_g.n);
    let ratio_w = last_w.mean_interactions / expected_w;
    let ratio_g = last_g.mean_interactions / expected_g;
    // Waiting / Gathering should be ≈ H(n−1)/2 > 1 and grow slowly with n.
    let measured_gap = last_w.mean_interactions / last_g.mean_interactions;
    let expected_gap = expected_w / expected_g;
    let passed = (0.7..=1.4).contains(&ratio_w)
        && (0.7..=1.4).contains(&ratio_g)
        && (0.6..=1.5).contains(&(measured_gap / expected_gap));
    report(
        "E9",
        "Waiting O(n² log n) vs Gathering O(n²)",
        "Theorem 9: E[Waiting] = n(n−1)/2·H(n−1), E[Gathering] = (n−1)²",
        format!(
            "at n = {}: Waiting mean {:.0} vs formula {:.0} (ratio {ratio_w:.2}); Gathering mean {:.0} vs formula {:.0} (ratio {ratio_g:.2}); gap {measured_gap:.2} vs predicted {expected_gap:.2}",
            last_w.n, last_w.mean_interactions, expected_w, last_g.mean_interactions, expected_g
        ),
        passed,
    )
}

/// E10 — Theorem 10 / Corollary 3: Waiting Greedy with
/// `τ = n^{3/2}√log n` terminates within `τ` w.h.p.
pub fn e10_waiting_greedy(effort: Effort) -> ExperimentReport {
    let (ns, trials) = match effort {
        Effort::Quick => (vec![16, 32, 64], 10),
        Effort::Full => (vec![32, 64, 128, 256], 40),
    };
    let points = check_within_bound(
        AlgorithmSpec::WaitingGreedy { tau: None },
        &ns,
        trials,
        0xE10,
        |n| harmonic::waiting_greedy_tau(n) as f64,
    );
    let worst = points
        .iter()
        .map(|p| p.fraction_within)
        .fold(f64::INFINITY, f64::min);
    let passed = worst >= 0.8
        && points
            .last()
            .map(|p| p.fraction_within >= 0.9)
            .unwrap_or(false);
    let detail: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "n={}: {:.0}% ≤ τ={}",
                p.n,
                p.fraction_within * 100.0,
                p.bound
            )
        })
        .collect();
    report(
        "E10",
        "Waiting Greedy terminates within τ = n^{3/2}√log n w.h.p.",
        "Theorem 10 / Corollary 3: WG_τ with τ = Θ(n^{3/2}√log n) terminates in τ interactions w.h.p.",
        detail.join("; "),
        passed,
    )
}

/// E11 — Theorem 11: with `meetTime` knowledge Waiting Greedy is optimal —
/// empirically it sits strictly between the offline optimum and the
/// knowledge-free algorithms at every `n`, with exponent ≈ 1.5.
pub fn e11_meettime_optimality(effort: Effort) -> ExperimentReport {
    let study = match effort {
        Effort::Quick => ScalingStudy::quick(),
        Effort::Full => ScalingStudy::benchmark(),
    };
    let results = study.run_all(&AlgorithmSpec::randomized_comparison());
    let ordered = ordering_holds_everywhere(&results);
    let wg = results
        .iter()
        .find(|r| r.algorithm == "WaitingGreedy")
        .expect("WG in comparison");
    let wg_exponent = wg
        .fit_with_log_factor(0.5)
        .map(|f| f.exponent)
        .unwrap_or(f64::NAN);
    let passed = ordered && (1.2..=1.8).contains(&wg_exponent);
    let means: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{} {:.0}",
                r.algorithm,
                r.points
                    .last()
                    .map(|p| p.mean_interactions)
                    .unwrap_or(f64::NAN)
            )
        })
        .collect();
    report(
        "E11",
        "Ordering offline < WaitingGreedy < Gathering < Waiting",
        "Theorem 11: Waiting Greedy is optimal given meetTime; it must sit between the full-knowledge optimum (n log n) and the knowledge-free optimum (n²), with exponent 3/2",
        format!(
            "means at n = {}: {} | WG exponent (log factor removed) {wg_exponent:.2}",
            study.ns.last().copied().unwrap_or(0),
            means.join(", ")
        ),
        passed,
    )
}

/// E12 — Section 2.3: sanity of the cost function (duplicate-insertion
/// invariance and `cost = 1 ⇔ optimal`).
pub fn e12_cost_function(effort: Effort) -> ExperimentReport {
    let seeds = match effort {
        Effort::Quick => 10u64,
        Effort::Full => 50u64,
    };
    let n = 6;
    let workload = UniformWorkload::new(n);
    let mut all_hold = true;
    for seed in 0..seeds {
        let seq = workload.generate(6 * n * n, seed);
        let offline = OfflineOptimal::new(&FullKnowledge::new(seq.clone()), NodeId(0));
        let mut algo = offline;
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::sweep_default(),
        )
        .expect("valid decisions");
        let base = cost_of_duration(&seq, NodeId(0), outcome.termination_time, 100);
        if !base.is_optimal() {
            all_hold = false;
        }
        // Duplicate-insertion invariance: repeating the final interaction a
        // few times at the end of the sequence cannot change the cost of the
        // same (unchanged) duration.
        let mut padded = seq.clone();
        if let Some(last) = seq.get(seq.len() as u64 - 1) {
            for _ in 0..5 {
                padded.push(last);
            }
        }
        let padded_cost = cost_of_duration(&padded, NodeId(0), outcome.termination_time, 100);
        if padded_cost != base {
            all_hold = false;
        }
    }
    report(
        "E12",
        "Cost-function sanity",
        "Section 2.3: cost_A(I) = 1 iff the algorithm is optimal on I; the cost is invariant under trivial transformations such as appending duplicate interactions",
        format!("{seeds} random sequences checked (offline optimum has cost 1; appending duplicates preserves the cost)"),
        all_hold,
    )
}

/// E13 — adaptive adversaries are *sweepable*: Monte-Carlo batches of the
/// online adaptive isolator run through the sharded streamed runner, with
/// serial and parallel execution byte-identical. Gathering completes every
/// trial in exactly `n − 1` transmissions; Waiting completes none.
pub fn e13_adaptive_sweep(effort: Effort) -> ExperimentReport {
    let (n, trials, horizon) = match effort {
        Effort::Quick => (16usize, 8usize, 4_000usize),
        Effort::Full => (64, 40, 64_000),
    };
    let config = BatchConfig {
        n,
        trials,
        horizon: Some(horizon),
        seed: 0xE13,
        parallel: false,
    };
    let gathering = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator)
        .config(&config)
        .run();
    let waiting = Sweep::scenario(AlgorithmSpec::Waiting, Scenario::AdaptiveIsolator)
        .config(&config)
        .run();
    let parallel = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator)
        .config(&BatchConfig {
            parallel: true,
            ..config
        })
        .run();
    let gathering_all = gathering
        .iter()
        .all(|r| r.terminated() && r.data_conserved && r.transmissions == n - 1);
    let waiting_none = waiting
        .iter()
        .all(|r| !r.terminated() && r.interactions_processed == horizon as u64);
    let deterministic = gathering == parallel;
    let passed = gathering_all && waiting_none && deterministic;
    report(
        "E13",
        "Adaptive adversaries sweep through the streamed sharded runner",
        "Section 2.2 operationalised: online adaptive adversaries run as first-class streamed scenarios — no materialisation — with deterministic sharded batches",
        format!(
            "n = {n}, {trials} trials vs the adaptive isolator: Gathering completed {}/{trials} (n−1 transmissions each), Waiting completed {}/{trials} within {horizon} interactions; serial == parallel: {deterministic}",
            gathering.iter().filter(|r| r.terminated()).count(),
            waiting.iter().filter(|r| r.terminated()).count(),
        ),
        passed,
    )
}

/// E14 — beyond the paper: completion-rate and transmission-cost
/// degradation of Waiting / Gathering / WaitingGreedy as the crash
/// probability grows. The paper's model assumes a fixed, fault-free
/// population; the fault axis ([`doda_sim::FaultedScenario`]) measures
/// how gracefully each strategy loses data when nodes crash mid-run:
/// fault-free runs aggregate everything, crash plans push trials into
/// survivors-only completion (the sink finishes, but over fewer data and
/// with fewer transmissions), and data conservation holds throughout.
pub fn e14_fault_degradation(effort: Effort) -> ExperimentReport {
    use doda_core::fault::FaultProfile;

    let (n, trials, ps) = match effort {
        Effort::Quick => (16usize, 8usize, vec![0.0, 0.002, 0.01]),
        Effort::Full => (64, 32, vec![0.0, 0.0005, 0.002, 0.01]),
    };
    let specs = [
        AlgorithmSpec::Waiting,
        AlgorithmSpec::Gathering,
        AlgorithmSpec::WaitingGreedy { tau: None },
    ];
    let mut passed = true;
    let mut lines = Vec::new();
    for spec in specs {
        let mut full_rates = Vec::new();
        let mut mean_transmissions = Vec::new();
        for &p in &ps {
            let scenario = if p > 0.0 {
                Scenario::Uniform.with_faults(FaultProfile::crash(p))
            } else {
                Scenario::Uniform.into()
            };
            let config = BatchConfig {
                n,
                trials,
                horizon: None,
                seed: 0xE14,
                parallel: false,
            };
            let raw = Sweep::scenario(spec, scenario).config(&config).run();
            // Conservation must hold on every terminated trial, faulted
            // or not.
            if raw.iter().any(|r| r.terminated() && !r.data_conserved) {
                passed = false;
            }
            let full = raw.iter().filter(|r| r.fully_aggregated()).count();
            let terminated: Vec<_> = raw.iter().filter(|r| r.terminated()).collect();
            let mean_tx = terminated
                .iter()
                .map(|r| r.transmissions as f64)
                .sum::<f64>()
                / terminated.len().max(1) as f64;
            full_rates.push(full as f64 / trials as f64);
            mean_transmissions.push(mean_tx);
        }
        // Fault-free sweeps aggregate everything...
        if full_rates[0] < 1.0 {
            passed = false;
        }
        // ...and crashes must cost completeness at the heaviest plan,
        // with fewer transmissions (lost data never transmits).
        let last = full_rates.len() - 1;
        if full_rates[last] >= 1.0 || mean_transmissions[last] >= mean_transmissions[0] {
            passed = false;
        }
        // Degradation is monotone (never *gaining* completeness from
        // more crashes).
        if full_rates.windows(2).any(|w| w[1] > w[0]) {
            passed = false;
        }
        lines.push(format!(
            "{spec}: full-aggregation rate {} | mean transmissions {}",
            full_rates
                .iter()
                .map(|r| format!("{:.2}", r))
                .collect::<Vec<_>>()
                .join(" → "),
            mean_transmissions
                .iter()
                .map(|t| format!("{:.1}", t))
                .collect::<Vec<_>>()
                .join(" → "),
        ));
    }
    report(
        "E14",
        "Crash faults degrade completion gracefully (fault axis)",
        "Beyond the paper: under crash probability p per step, the sink still terminates but aggregates survivors only — completion degrades monotonically with p, transmissions shrink, and no datum is ever unaccounted for",
        format!("n = {n}, {trials} trials, p ∈ {ps:?}: {}", lines.join(" ; ")),
        passed,
    )
}

/// E15 — beyond the paper: exact vs approximate aggregation. The
/// aggregation algebra makes the carried value orthogonal to the
/// trajectory: switching [`doda_sim::AggregateKind`] changes *what* the
/// sink knows at termination, never *how* the run unfolds. Measured
/// here on Gathering vs uniform:
///
/// * **trajectory invariance** — every aggregate kind reproduces the
///   exact run's interactions, transmissions and termination time
///   trial-for-trial (decisions read algorithm state, not datum values);
/// * **exactness** — the `Count` summary equals `n` on every fully
///   aggregated trial, like the `IdSet` reference;
/// * **accuracy** — the fixed-size `Distinct` sketch estimates `n`
///   within a register-bound relative error, and the fixed-bin
///   `Quantile` sketch pins the median and p95 of the uniform `[0, 1)`
///   readings within bin-plus-sampling tolerance — both with `O(1)`
///   state per node where `IdSet` pays `O(n)` at the sink (the memory
///   side is asserted on real heap marks by `doda-bench
///   --algebra-guard`).
pub fn e15_exact_vs_sketch(effort: Effort) -> ExperimentReport {
    use doda_core::algebra::AggregateSummary;
    use doda_sim::AggregateKind;

    let (n, trials, distinct_tol, quantile_tol) = match effort {
        Effort::Quick => (32usize, 4usize, 0.25, 0.25),
        Effort::Full => (512, 8, 0.15, 0.08),
    };
    let sweep = |kind| {
        Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .n(n)
            .trials(trials)
            .seed(0xE15)
            .aggregate(kind)
            .run()
    };
    let exact = sweep(AggregateKind::IdSet);
    let counted = sweep(AggregateKind::Count);
    let distinct = sweep(AggregateKind::Distinct);
    let quantile = sweep(AggregateKind::Quantile);

    let mut passed = exact.iter().all(|r| r.fully_aggregated());

    // Same trajectory under every aggregate kind, trial for trial.
    let same_trajectory = |approx: &[doda_sim::TrialResult]| {
        exact.iter().zip(approx).all(|(e, a)| {
            e.interactions_processed == a.interactions_processed
                && e.transmissions == a.transmissions
                && e.termination_time == a.termination_time
        })
    };
    let trajectories_match =
        same_trajectory(&counted) && same_trajectory(&distinct) && same_trajectory(&quantile);
    passed &= trajectories_match;

    // Counting is exact.
    passed &= counted.iter().all(
        |r| matches!(r.aggregate, Some(AggregateSummary::Count { value }) if value == n as u64),
    );

    // The distinct sketch tracks the true cardinality.
    let mut distinct_err: f64 = 0.0;
    for r in &distinct {
        match r.aggregate {
            Some(AggregateSummary::Distinct { estimate }) => {
                distinct_err = distinct_err.max((estimate - n as f64).abs() / n as f64);
            }
            _ => passed = false,
        }
    }
    passed &= distinct_err <= distinct_tol;

    // The quantile sketch counts everything and pins the uniform
    // readings' median and p95.
    let mut median_err: f64 = 0.0;
    let mut p95_err: f64 = 0.0;
    for r in &quantile {
        match r.aggregate {
            Some(AggregateSummary::Quantile { count, median, p95 }) if count == n as u64 => {
                median_err = median_err.max((median - 0.5).abs());
                p95_err = p95_err.max((p95 - 0.95).abs());
            }
            _ => passed = false,
        }
    }
    passed &= median_err <= quantile_tol && p95_err <= quantile_tol;

    report(
        "E15",
        "Exact vs sketch aggregation: same trajectory, bounded error",
        "Beyond the paper: the aggregation algebra swaps the carried value under the same runs — exact counts stay exact, fixed-size sketches trade bounded error for O(1) per-node state",
        format!(
            "n = {n}, {trials} trials of Gathering vs uniform per kind: trajectories identical \
             across id-set/count/distinct/quantile: {trajectories_match}; distinct worst error \
             {:.1}% (tol {:.0}%); quantile worst |median−0.5| {median_err:.3}, |p95−0.95| \
             {p95_err:.3} (tol {quantile_tol})",
            distinct_err * 100.0,
            distinct_tol * 100.0,
        ),
        passed,
    )
}

/// Runs every experiment at the given effort and returns the reports in
/// order E1–E15.
pub fn run_all(effort: Effort) -> Vec<ExperimentReport> {
    vec![
        e1_adaptive_adversary(effort),
        e2_oblivious_trap(effort),
        e3_cycle_trap(effort),
        e4_recurring_edges(effort),
        e5_tree_underlying(effort),
        e6_future_knowledge(effort),
        e7_lower_bound(effort),
        e8_full_knowledge(effort),
        e9_waiting_gathering(effort),
        e10_waiting_greedy(effort),
        e11_meettime_optimality(effort),
        e12_cost_function(effort),
        e13_adaptive_sweep(effort),
        e14_fault_degradation(effort),
        e15_exact_vs_sketch(effort),
    ]
}

/// The mean interaction count of one algorithm for a single `(n, trials)`
/// configuration — the primitive the Criterion benches time and report.
pub fn mean_interactions(spec: AlgorithmSpec, n: usize, trials: usize, seed: u64) -> f64 {
    let config = BatchConfig {
        n,
        trials,
        horizon: None,
        seed,
        parallel: false,
    };
    Sweep::scenario(spec, Scenario::Uniform)
        .config(&config)
        .run_summarized()
        .0
        .interactions
        .mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impossibility_experiments_pass_quickly() {
        assert!(e1_adaptive_adversary(Effort::Quick).passed);
        assert!(e3_cycle_trap(Effort::Quick).passed);
    }

    #[test]
    fn oblivious_trap_experiment_passes() {
        assert!(e2_oblivious_trap(Effort::Quick).passed);
    }

    #[test]
    fn knowledge_experiments_pass() {
        let e4 = e4_recurring_edges(Effort::Quick);
        assert!(e4.passed, "{e4:?}");
        let e5 = e5_tree_underlying(Effort::Quick);
        assert!(e5.passed, "{e5:?}");
        let e6 = e6_future_knowledge(Effort::Quick);
        assert!(e6.passed, "{e6:?}");
    }

    #[test]
    fn randomized_adversary_shape_experiments_pass() {
        let e7 = e7_lower_bound(Effort::Quick);
        assert!(e7.passed, "{e7:?}");
        let e8 = e8_full_knowledge(Effort::Quick);
        assert!(e8.passed, "{e8:?}");
    }

    #[test]
    fn waiting_vs_gathering_experiment_passes() {
        let e9 = e9_waiting_gathering(Effort::Quick);
        assert!(e9.passed, "{e9:?}");
    }

    #[test]
    fn meettime_experiments_pass() {
        let e10 = e10_waiting_greedy(Effort::Quick);
        assert!(e10.passed, "{e10:?}");
        let e11 = e11_meettime_optimality(Effort::Quick);
        assert!(e11.passed, "{e11:?}");
    }

    #[test]
    fn cost_function_experiment_passes() {
        let e12 = e12_cost_function(Effort::Quick);
        assert!(e12.passed, "{e12:?}");
    }

    #[test]
    fn adaptive_sweep_experiment_passes() {
        let e13 = e13_adaptive_sweep(Effort::Quick);
        assert!(e13.passed, "{e13:?}");
    }

    #[test]
    fn fault_degradation_experiment_passes() {
        let e14 = e14_fault_degradation(Effort::Quick);
        assert!(e14.passed, "{e14:?}");
    }

    #[test]
    fn exact_vs_sketch_experiment_passes() {
        let e15 = e15_exact_vs_sketch(Effort::Quick);
        assert!(e15.passed, "{e15:?}");
    }

    #[test]
    fn mean_interactions_primitive() {
        let mean = mean_interactions(AlgorithmSpec::Gathering, 10, 4, 1);
        assert!(mean >= 9.0);
    }
}
