//! Scaling studies across the node count `n`.

use doda_sim::{AlgorithmSpec, BatchConfig, Scenario, Sweep};
use doda_stats::regression::{fit_power_law, fit_power_law_with_log_factor, PowerLawFit};

/// One measured point of a scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Node count.
    pub n: usize,
    /// Mean interactions to completion over the batch.
    pub mean_interactions: f64,
    /// Median interactions to completion.
    pub median_interactions: f64,
    /// Fraction of trials that completed within the horizon.
    pub completion_rate: f64,
}

/// The result of sweeping one algorithm across node counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Measured points, one per `n`.
    pub points: Vec<ScalingPoint>,
    /// Power-law fit `mean ≈ c·n^α` of the mean interaction counts.
    pub fit: Option<PowerLawFit>,
}

impl ScalingResult {
    /// The fitted exponent, if a fit was possible.
    pub fn exponent(&self) -> Option<f64> {
        self.fit.map(|f| f.exponent)
    }

    /// Power-law fit after dividing out a `(log n)^beta` factor — used to
    /// check `n log n` (β = 1) and `n^{3/2}√log n` (β = 0.5) shapes.
    pub fn fit_with_log_factor(&self, beta: f64) -> Option<PowerLawFit> {
        let xs: Vec<f64> = self.points.iter().map(|p| p.n as f64).collect();
        let ys: Vec<f64> = self.points.iter().map(|p| p.mean_interactions).collect();
        fit_power_law_with_log_factor(&xs, &ys, beta)
    }
}

/// A scaling study: a set of node counts, a trial count per point and a
/// root seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingStudy {
    /// Node counts to sweep.
    pub ns: Vec<usize>,
    /// Trials per node count.
    pub trials: usize,
    /// Root seed (each `(algorithm, n)` batch derives its own sub-seed).
    pub seed: u64,
    /// Run the trials of each batch in parallel.
    pub parallel: bool,
}

impl ScalingStudy {
    /// A quick study suitable for CI tests and examples.
    pub fn quick() -> Self {
        ScalingStudy {
            ns: vec![8, 16, 32, 64],
            trials: 10,
            seed: 0xD0DA,
            parallel: false,
        }
    }

    /// The study used by the benchmark harness (larger sweep, parallel).
    pub fn benchmark() -> Self {
        ScalingStudy {
            ns: vec![16, 32, 64, 128, 256],
            trials: 30,
            seed: 0xD0DA,
            parallel: true,
        }
    }

    /// Runs the study for one algorithm.
    pub fn run(&self, spec: AlgorithmSpec) -> ScalingResult {
        let mut points = Vec::with_capacity(self.ns.len());
        for (idx, &n) in self.ns.iter().enumerate() {
            let config = BatchConfig {
                n,
                trials: self.trials,
                horizon: None,
                seed: self.seed ^ ((idx as u64 + 1) << 32),
                parallel: self.parallel,
            };
            let batch = Sweep::scenario(spec, Scenario::Uniform)
                .config(&config)
                .run_summarized()
                .0;
            points.push(ScalingPoint {
                n,
                mean_interactions: batch.interactions.mean,
                median_interactions: batch.interactions.median,
                completion_rate: batch.completion_rate,
            });
        }
        let xs: Vec<f64> = points.iter().map(|p| p.n as f64).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.mean_interactions).collect();
        ScalingResult {
            algorithm: spec.label().to_string(),
            points,
            fit: fit_power_law(&xs, &ys),
        }
    }

    /// Runs the study for several algorithms.
    pub fn run_all(&self, specs: &[AlgorithmSpec]) -> Vec<ScalingResult> {
        specs.iter().map(|&s| self.run(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> ScalingStudy {
        ScalingStudy {
            ns: vec![8, 16, 32],
            trials: 6,
            seed: 99,
            parallel: false,
        }
    }

    #[test]
    fn gathering_exponent_is_roughly_two() {
        let result = tiny_study().run(AlgorithmSpec::Gathering);
        assert_eq!(result.points.len(), 3);
        let exponent = result.exponent().unwrap();
        assert!(
            (1.6..=2.4).contains(&exponent),
            "Gathering exponent {exponent} not ≈ 2"
        );
        for p in &result.points {
            assert_eq!(p.completion_rate, 1.0);
            assert!(p.median_interactions > 0.0);
        }
    }

    #[test]
    fn offline_is_far_below_gathering() {
        let study = tiny_study();
        let offline = study.run(AlgorithmSpec::OfflineOptimal);
        let gathering = study.run(AlgorithmSpec::Gathering);
        for (a, b) in offline.points.iter().zip(&gathering.points) {
            assert!(a.mean_interactions < b.mean_interactions);
        }
        // The offline optimum grows like n log n: after removing the log
        // factor the exponent is close to 1, clearly below Gathering's.
        let offline_exp = offline.fit_with_log_factor(1.0).unwrap().exponent;
        let gathering_exp = gathering.exponent().unwrap();
        assert!(offline_exp < gathering_exp - 0.4);
    }

    #[test]
    fn run_all_covers_requested_specs() {
        let study = ScalingStudy {
            ns: vec![8, 16],
            trials: 3,
            seed: 5,
            parallel: false,
        };
        let results = study.run_all(&[AlgorithmSpec::Gathering, AlgorithmSpec::Waiting]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].algorithm, "Gathering");
        assert_eq!(results[1].algorithm, "Waiting");
    }

    #[test]
    fn preset_studies_are_well_formed() {
        assert!(ScalingStudy::quick().ns.len() >= 3);
        assert!(ScalingStudy::benchmark().ns.len() >= 4);
        assert!(ScalingStudy::benchmark().parallel);
    }
}
