//! Empirical "with high probability" checks.
//!
//! The paper's w.h.p. statements assert that an event holds with
//! probability `> 1 − o(1/log n)`. On finite `n` we measure the fraction of
//! independent trials in which the event holds and compare it against
//! `1 − 1/log n` (the budget from the paper's definition, see
//! `doda_stats::bounds::whp_failure_budget`).

use doda_sim::{AlgorithmSpec, BatchConfig, Scenario, Sweep};
use doda_stats::bounds::whp_failure_budget;

/// Result of a w.h.p. check for one node count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhpPoint {
    /// Node count.
    pub n: usize,
    /// The bound (in interactions) the trials are checked against.
    pub bound: f64,
    /// Fraction of trials that completed within the bound.
    pub fraction_within: f64,
    /// The failure budget `1 / log n` allowed by the paper's definition.
    pub allowed_failure: f64,
}

impl WhpPoint {
    /// Returns `true` if the empirical failure rate is within the allowed
    /// budget (i.e. the w.h.p. claim is consistent with the measurements).
    pub fn holds(&self) -> bool {
        1.0 - self.fraction_within <= self.allowed_failure + 1e-9
    }
}

/// Measures, for each `n`, the fraction of trials in which `spec`
/// terminates within `bound(n)` interactions against the randomized
/// adversary.
pub fn check_within_bound<F>(
    spec: AlgorithmSpec,
    ns: &[usize],
    trials: usize,
    seed: u64,
    mut bound: F,
) -> Vec<WhpPoint>
where
    F: FnMut(usize) -> f64,
{
    ns.iter()
        .map(|&n| {
            let b = bound(n);
            let config = BatchConfig {
                n,
                trials,
                horizon: Some(
                    (b.ceil() as usize)
                        .max(doda_adversary::RandomizedAdversary::default_horizon(n)),
                ),
                seed: seed ^ ((n as u64) << 20),
                parallel: false,
            };
            let raw = Sweep::scenario(spec, Scenario::Uniform)
                .config(&config)
                .run();
            let within = raw
                .iter()
                .filter(|r| {
                    r.interactions_to_completion()
                        .map(|x| x <= b)
                        .unwrap_or(false)
                })
                .count();
            WhpPoint {
                n,
                bound: b,
                fraction_within: within as f64 / trials.max(1) as f64,
                allowed_failure: whp_failure_budget(n),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_stats::harmonic;

    #[test]
    fn waiting_greedy_terminates_within_tau_whp() {
        // Theorem 10 / Corollary 3: WG with τ = n^{3/2}√log n finishes
        // within τ interactions w.h.p.
        let points = check_within_bound(
            AlgorithmSpec::WaitingGreedy { tau: None },
            &[16, 32, 64],
            10,
            7,
            |n| harmonic::waiting_greedy_tau(n) as f64,
        );
        for p in &points {
            assert!(
                p.fraction_within >= 0.8,
                "n={}: only {:.0}% of trials within τ={}",
                p.n,
                p.fraction_within * 100.0,
                p.bound
            );
        }
    }

    #[test]
    fn gathering_rarely_beats_the_nlogn_offline_bound() {
        // Gathering needs Θ(n²) interactions, so almost no trial finishes
        // within the offline-optimal n·H(n−1) bound once n is non-trivial.
        let points = check_within_bound(AlgorithmSpec::Gathering, &[32], 10, 3, |n| {
            harmonic::expected_full_knowledge_interactions(n)
        });
        assert!(points[0].fraction_within <= 0.2);
        assert!(points[0].allowed_failure > 0.0);
    }

    #[test]
    fn holds_logic() {
        let p = WhpPoint {
            n: 100,
            bound: 1.0,
            fraction_within: 1.0,
            allowed_failure: 0.2,
        };
        assert!(p.holds());
        let q = WhpPoint {
            fraction_within: 0.5,
            ..p
        };
        assert!(!q.holds());
    }
}
