//! Property suite: the lane tier is anchored to the scalar reference,
//! byte for byte.
//!
//! The lane engine steps up to [`MAX_LANES`] trials in lockstep through
//! shared `[u64]` bit-lane state — a completely different execution
//! strategy from the scalar per-trial engine. These properties pin the
//! contract that makes it safe to route sweeps through it silently:
//!
//! 1. **Tier equivalence** — for every scenario of the registry ×
//!    knowledge-free algorithm × seed, forcing [`ExecutionTier::Lanes`]
//!    produces the same per-trial [`TrialResult`]s as forcing
//!    [`ExecutionTier::Scalar`]. This covers the oblivious batched path
//!    (devirtualised pulls, including hand-batched sources) and the
//!    stepped path for adaptive adversaries alike.
//! 2. **Grouping invariance** — the lane-batch width `K` and ragged final
//!    batches (`trials % K != 0`) never change a result: trial `i` is
//!    seeded by position, not by lane or batch.
//! 3. **Serial/parallel invariance** — lane sweeps are byte-identical
//!    across worker counts, like every other tier.
//!
//! [`MAX_LANES`]: doda::core::MAX_LANES

use doda::prelude::*;
use doda::workloads::UniformWorkload;
use proptest::prelude::*;

/// The knowledge-free algorithms: the specs with a lane kernel.
const LANED: [AlgorithmSpec; 2] = [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Lane tier ≡ scalar tier, per trial, for every registry scenario ×
    /// knowledge-free algorithm × seed.
    #[test]
    fn lane_tier_equals_the_scalar_tier(
        seed in 0u64..1_000_000,
        n_base in 6usize..14,
    ) {
        for scenario in Scenario::registry() {
            let n = n_base.max(scenario.min_nodes());
            for spec in LANED {
                let sweep = |tier| {
                    Sweep::scenario(spec, scenario)
                        .n(n)
                        .trials(5)
                        .seed(seed)
                        .horizon(Some(3_000))
                        .tier(tier)
                };
                let lanes = sweep(ExecutionTier::Lanes).run();
                let scalar = sweep(ExecutionTier::Scalar).run();
                prop_assert_eq!(
                    &lanes,
                    &scalar,
                    "{} diverged between lanes and scalar on {} (n={}, seed={})",
                    spec,
                    scenario,
                    n,
                    seed
                );
            }
        }
    }

    /// The lane-batch width never leaks into results: K ∈ {1, 7, 64}
    /// with a deliberately ragged trial count (`trials % K != 0` for the
    /// wide widths) all match the scalar reference.
    #[test]
    fn lane_grouping_and_ragged_batches_are_invisible(
        seed in 0u64..1_000_000,
        trials in 9usize..23,
    ) {
        let workload = UniformWorkload::new(12);
        for spec in LANED {
            let sweep = || {
                Sweep::workload(spec, &workload)
                    .trials(trials)
                    .seed(seed)
                    .horizon(Some(2_500))
            };
            let scalar = sweep().tier(ExecutionTier::Scalar).run();
            for width in [1, 7, 64] {
                let lanes = sweep()
                    .tier(ExecutionTier::Lanes)
                    .lane_width(width)
                    .run();
                prop_assert_eq!(
                    &lanes,
                    &scalar,
                    "{} diverged at lane width {} ({} trials, seed={})",
                    spec,
                    width,
                    trials,
                    seed
                );
            }
        }
    }

    /// Lane sweeps are serial/parallel byte-identical, with worker
    /// sharding layered on top of lane batching.
    #[test]
    fn lane_sweeps_are_serial_parallel_identical(seed in 0u64..1_000_000) {
        for scenario in [Scenario::Uniform, Scenario::ObliviousTrap] {
            for spec in LANED {
                let sweep = || {
                    Sweep::scenario(spec, scenario)
                        .n(10)
                        .trials(11)
                        .seed(seed)
                        .horizon(Some(2_000))
                        .tier(ExecutionTier::Lanes)
                        .lane_width(4)
                };
                let serial = sweep().parallel(false).run();
                let parallel = sweep().parallel(true).run();
                prop_assert_eq!(
                    &serial,
                    &parallel,
                    "{} diverged between serial and parallel lanes on {}",
                    spec,
                    scenario
                );
            }
        }
    }
}

/// The auto tier routes knowledge-free fault-free scenario sweeps to the
/// lane path — and what it runs is exactly what the forced lane tier runs.
#[test]
fn auto_resolves_to_lanes_and_matches_the_forced_tier() {
    let sweep = |tier| {
        Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .n(16)
            .trials(6)
            .seed(0xD0DA)
            .horizon(Some(4_000))
            .tier(tier)
    };
    assert_eq!(sweep(ExecutionTier::Auto).path_label(), "lanes");
    assert_eq!(
        sweep(ExecutionTier::Auto).run(),
        sweep(ExecutionTier::Lanes).run()
    );
}
