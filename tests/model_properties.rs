//! Property-based integration tests on the model invariants, across crates.

use doda::core::convergecast::{optimal_convergecast, validate_schedule};
use doda::core::cost::cost_of_duration;
use doda::graph::NodeId;
use doda::prelude::*;
use proptest::prelude::*;

const SINK: NodeId = NodeId(0);

/// Strategy: a random interaction sequence over `n` nodes.
fn sequence_strategy(n: usize, max_len: usize) -> impl Strategy<Value = InteractionSequence> {
    prop::collection::vec((0..n, 0..n), 1..max_len).prop_map(move |pairs| {
        let mut filtered: Vec<(usize, usize)> = pairs.into_iter().filter(|(a, b)| a != b).collect();
        if filtered.is_empty() {
            filtered.push((0, 1));
        }
        InteractionSequence::from_pairs(n, filtered)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The one-transmission rule and data conservation hold for every
    /// algorithm on every sequence: the multiset of origins at the sink plus
    /// the origins still held by other owners always equals {0, …, n-1}.
    #[test]
    fn ownership_partition_is_invariant(seq in sequence_strategy(7, 120)) {
        for spec in [AlgorithmSpec::Waiting, AlgorithmSpec::Gathering,
                     AlgorithmSpec::WaitingGreedy { tau: None },
                     AlgorithmSpec::OfflineOptimal] {
            let Some(mut algo) = spec.instantiate(&seq, SINK) else { continue };
            let outcome = engine::run_with_id_sets(
                algo.as_mut(),
                &mut seq.source(false),
                SINK,
                EngineConfig::default(),
            ).unwrap();
            // Owners hold disjoint origin sets whose union is everything.
            // (We can only see the sink's data from the outcome, so check the
            // weaker but still discriminating invariants below.)
            let owners = outcome.remaining_owners();
            prop_assert!(owners >= 1);
            prop_assert!(outcome.final_ownership[SINK.index()]);
            if outcome.terminated() {
                prop_assert_eq!(owners, 1);
                prop_assert!(outcome.sink_data.as_ref().unwrap().covers_all(7));
            } else {
                prop_assert!(outcome.sink_data.as_ref().unwrap().len() < 7);
            }
        }
    }

    /// Whenever an optimal convergecast exists it is a valid aggregation
    /// schedule, no algorithm terminates before it, and the cost of the
    /// offline optimum is 1.
    #[test]
    fn convergecast_is_valid_and_unbeatable(seq in sequence_strategy(6, 200)) {
        match optimal_convergecast(&seq, SINK, 0) {
            None => {
                // No convergecast: no algorithm can terminate either.
                for spec in [AlgorithmSpec::Gathering, AlgorithmSpec::OfflineOptimal] {
                    let Some(mut algo) = spec.instantiate(&seq, SINK) else { continue };
                    let outcome = engine::run_with_id_sets(
                        algo.as_mut(),
                        &mut seq.source(false),
                        SINK,
                        EngineConfig::default(),
                    ).unwrap();
                    prop_assert!(!outcome.terminated());
                }
            }
            Some(schedule) => {
                prop_assert!(validate_schedule(&seq, SINK, &schedule).is_ok());
                let mut offline = AlgorithmSpec::OfflineOptimal
                    .instantiate(&seq, SINK)
                    .expect("offline always instantiates");
                let outcome = engine::run_with_id_sets(
                    offline.as_mut(),
                    &mut seq.source(false),
                    SINK,
                    EngineConfig::default(),
                ).unwrap();
                prop_assert!(outcome.terminated());
                prop_assert_eq!(outcome.termination_time, Some(schedule.completion));
                let cost = cost_of_duration(&seq, SINK, outcome.termination_time, 64);
                prop_assert!(cost.is_optimal());
                // Nothing terminates strictly before the optimum.
                for spec in [AlgorithmSpec::Waiting, AlgorithmSpec::Gathering] {
                    let mut algo = spec.instantiate(&seq, SINK).unwrap();
                    let online = engine::run_with_id_sets(
                        algo.as_mut(),
                        &mut seq.source(false),
                        SINK,
                        EngineConfig::default(),
                    ).unwrap();
                    if let Some(t) = online.termination_time {
                        prop_assert!(t >= schedule.completion);
                    }
                }
            }
        }
    }

    /// The cost function is monotone in the duration and invariant under
    /// appending duplicate interactions.
    #[test]
    fn cost_monotonicity_and_duplicate_invariance(
        seq in sequence_strategy(5, 150),
        d1 in 0u64..150,
        d2 in 0u64..150,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let c_lo = cost_of_duration(&seq, SINK, Some(lo), 64);
        let c_hi = cost_of_duration(&seq, SINK, Some(hi), 64);
        if let (Some(a), Some(b)) = (c_lo.as_finite(), c_hi.as_finite()) {
            prop_assert!(a <= b, "cost must be monotone in the duration");
        }
        // Appending duplicates of the last interaction does not change the
        // cost of a fixed duration within the original sequence length.
        if let Some(last) = seq.get(seq.len() as u64 - 1) {
            let mut padded = seq.clone();
            padded.push(last);
            padded.push(last);
            let duration = Some(lo.min(seq.len() as u64 - 1));
            prop_assert_eq!(
                cost_of_duration(&seq, SINK, duration, 64),
                cost_of_duration(&padded, SINK, duration, 64)
            );
        }
    }
}
