//! Property suite: the round-based execution model is anchored to the
//! pairwise model, byte for byte.
//!
//! Two embeddings are pinned here, for every scenario of the registry ×
//! knowledge-free algorithm × seed:
//!
//! 1. **Singleton anchor** — lifting any pairwise stream to one-interaction
//!    rounds ([`SingletonRounds`]) and driving it through the engine's
//!    batched round path produces results identical to the pairwise path
//!    (same `ExecutionOutcome` counters, same `FaultTally`, same final
//!    state). The round model strictly generalises the paper's.
//! 2. **Flattening** — playing a native round scenario through its
//!    flattened pairwise view ([`FlattenedRounds`], what oracles and fault
//!    plans consume) produces results identical to the native batched
//!    round path. The two execution routes of the sweep runner can never
//!    disagree.
//!
//! Plus the sweep-level guarantee: round scenarios (fault-free and
//! faulted) are serial/parallel byte-identical through
//! [`Sweep`].

use doda::core::engine;
use doda::core::round::SingletonRounds;
use doda::graph::NodeId;
use doda::prelude::*;
use proptest::prelude::*;

const STREAMABLE: [AlgorithmSpec; 2] = [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting];

fn trial_config(horizon: u64) -> TrialConfig {
    TrialConfig {
        max_interactions: Some(horizon),
        ..TrialConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Singleton rounds ≡ pairwise, for every registry scenario ×
    /// knowledge-free algorithm × seed — including the adaptive
    /// adversaries, whose ownership view passes through the singleton
    /// lift unchanged.
    #[test]
    fn singleton_rounds_equal_the_pairwise_path(
        seed in 0u64..1_000_000,
        n_base in 6usize..14,
    ) {
        let horizon = 3_000u64;
        let mut runner = TrialRunner::new();
        for scenario in Scenario::registry() {
            let n = n_base.max(scenario.min_nodes());
            for spec in STREAMABLE {
                let pairwise = runner.run_streamed(
                    spec,
                    scenario.source(n, seed).as_mut(),
                    &trial_config(horizon),
                );
                let via_rounds = runner.run_rounds(
                    spec,
                    &mut SingletonRounds::new(scenario.source(n, seed)),
                    &trial_config(horizon),
                );
                // TrialResult carries the full outcome surface: counters,
                // completion class, FaultTally, data conservation.
                prop_assert_eq!(
                    &pairwise,
                    &via_rounds,
                    "{} diverged on {} (n={}, seed={})",
                    spec,
                    scenario,
                    n,
                    seed
                );
            }
        }
    }

    /// The singleton anchor at the engine level: identical
    /// `ExecutionOutcome`-level counters *and* identical final network
    /// state (sink aggregate, ownership bitmap).
    #[test]
    fn singleton_rounds_preserve_the_execution_outcome(
        seed in 0u64..1_000_000,
        n in 6usize..14,
    ) {
        let config = EngineConfig::sweep(2_000);
        for scenario in [Scenario::Uniform, Scenario::Zipf { exponent: 1.2 }] {
            for spec in STREAMABLE {
                let outcome = engine::run_with_id_sets(
                    spec.instantiate_online().expect("streamable").as_mut(),
                    scenario.source(n, seed).as_mut(),
                    NodeId(0),
                    config,
                )
                .expect("valid decisions");

                let mut round_engine: Engine<IdSet> = Engine::new();
                let stats = round_engine
                    .run_rounds(
                        spec.instantiate_online().expect("streamable").as_mut(),
                        &mut SingletonRounds::new(scenario.source(n, seed)),
                        NodeId(0),
                        IdSet::singleton,
                        config,
                        &mut DiscardTransmissions,
                    )
                    .expect("valid decisions");

                prop_assert_eq!(stats.run.termination_time, outcome.termination_time);
                prop_assert_eq!(
                    stats.run.interactions_processed,
                    outcome.interactions_processed
                );
                prop_assert_eq!(stats.rounds_processed, outcome.interactions_processed);
                prop_assert_eq!(stats.run.completion, outcome.completion);
                prop_assert_eq!(stats.run.faults, outcome.faults);
                prop_assert_eq!(
                    round_engine.state().data_of(NodeId(0)).cloned(),
                    outcome.sink_data
                );
                prop_assert_eq!(
                    round_engine.state().ownership_bitmap(),
                    outcome.final_ownership
                );
            }
        }
    }

    /// Native batched round execution ≡ flattened pairwise execution, for
    /// every round scenario × knowledge-free algorithm × seed — the
    /// property that lets the sweep runner route fault-free trials through
    /// `run_rounds` and everything else through the flattened stream
    /// without ever changing a number.
    #[test]
    fn native_rounds_equal_the_flattened_stream(
        seed in 0u64..1_000_000,
        n_base in 6usize..16,
    ) {
        let horizon = 4_000u64;
        let mut runner = TrialRunner::new();
        for scenario in Scenario::registry() {
            let Some(_) = scenario.round_source(scenario.min_nodes(), 0) else {
                continue;
            };
            let n = n_base.max(scenario.min_nodes());
            for spec in STREAMABLE {
                let mut rounds = scenario
                    .round_source(n, seed)
                    .expect("round scenarios expose round sources");
                let native = runner.run_rounds(spec, rounds.as_mut(), &trial_config(horizon));
                // Scenario::source of a round scenario IS the flattened view.
                let flattened = runner.run_streamed(
                    spec,
                    scenario.source(n, seed).as_mut(),
                    &trial_config(horizon),
                );
                prop_assert_eq!(
                    &native,
                    &flattened,
                    "{} diverged on {} (n={}, seed={})",
                    spec,
                    scenario,
                    n,
                    seed
                );
            }
        }
    }

    /// Round scenarios sweep serial/parallel byte-identically — fault-free
    /// (native round path), faulted (flattened fault layer), Byzantine
    /// (audited flattened stream), and materialising (oracles over the
    /// flattened stream) alike. The cases come from the shared registry
    /// slice, so a new round entry is covered automatically.
    #[test]
    fn round_scenario_sweeps_are_serial_parallel_identical(seed in 0u64..1_000_000) {
        for scenario in doda::sim::test_support::round_registry_cases() {
            let plain = scenario.faults.is_none() && scenario.byzantine.is_none();
            let specs: &[AlgorithmSpec] = if plain {
                &[AlgorithmSpec::Gathering, AlgorithmSpec::WaitingGreedy { tau: None }]
            } else {
                &[AlgorithmSpec::Gathering]
            };
            for &spec in specs {
                if !scenario.supports(spec) {
                    continue;
                }
                let cfg = BatchConfig {
                    n: scenario.min_nodes().max(11),
                    trials: 5,
                    horizon: Some(3_000),
                    seed,
                    parallel: false,
                };
                let serial = Sweep::scenario(spec, scenario).config(&cfg).run();
                let parallel = Sweep::scenario(spec, scenario)
                    .config(&BatchConfig {
                        parallel: true,
                        ..cfg
                    })
                    .run();
                prop_assert_eq!(
                    &serial,
                    &parallel,
                    "{} diverged between serial and parallel on {}",
                    spec,
                    scenario
                );
            }
        }
    }
}

/// The sink-unmatched round trap starves every algorithm of the suite —
/// the round-model impossibility the registry exposes as a scenario.
#[test]
fn round_isolator_starves_every_supported_algorithm() {
    let cfg = BatchConfig {
        n: 10,
        trials: 3,
        horizon: Some(2_000),
        seed: 0xD0DA,
        parallel: false,
    };
    let scenario = Scenario::RoundIsolator;
    for spec in AlgorithmSpec::all() {
        if !scenario.supports(spec) {
            continue;
        }
        let results = Sweep::scenario(spec, scenario).config(&cfg).run();
        assert!(
            results.iter().all(|r| !r.terminated()),
            "{spec} escaped the sink-unmatched trap"
        );
    }
}
