//! Cross-crate determinism guarantees of the sharded batch runner.
//!
//! The sweep runner shards trials across worker threads, but trial `i`
//! always runs with the sub-seed derived from `(config.seed, i)` no matter
//! which worker executes it — so a parallel batch must be **identical**
//! (summary and raw per-trial results, byte for byte) to the serial batch
//! of the same configuration, and re-running either must reproduce it.

use doda_sim::prelude::*;

fn config(n: usize, trials: usize, seed: u64, parallel: bool) -> BatchConfig {
    BatchConfig {
        n,
        trials,
        horizon: None,
        seed,
        parallel,
    }
}

#[test]
fn parallel_and_serial_batches_are_byte_identical() {
    for spec in [
        AlgorithmSpec::Gathering,
        AlgorithmSpec::Waiting,
        AlgorithmSpec::WaitingGreedy { tau: None },
        AlgorithmSpec::OfflineOptimal,
    ] {
        for seed in [1u64, 0xD0DA] {
            let serial = run_batch_detailed(spec, &config(12, 9, seed, false));
            let parallel = run_batch_detailed(spec, &config(12, 9, seed, true));
            assert_eq!(
                serial, parallel,
                "{spec} diverged between serial and parallel for seed {seed}"
            );
        }
    }
}

#[test]
fn batches_are_reproducible_across_runs() {
    let cfg = config(10, 6, 7, true);
    let first = run_batch_detailed(AlgorithmSpec::Gathering, &cfg);
    let second = run_batch_detailed(AlgorithmSpec::Gathering, &cfg);
    assert_eq!(first, second);
}

#[test]
fn different_seeds_produce_different_batches() {
    let a = run_batch_detailed(AlgorithmSpec::Gathering, &config(10, 6, 1, true));
    let b = run_batch_detailed(AlgorithmSpec::Gathering, &config(10, 6, 2, true));
    assert_ne!(a.1, b.1, "distinct seeds must draw distinct sequences");
}

/// The streamed sharded runner: every registry scenario (including the
/// adversaries) must produce byte-identical raw results serially and in
/// parallel, for both streamed and materialising algorithms.
#[test]
fn scenario_batches_are_serial_parallel_identical() {
    for scenario in Scenario::registry() {
        let n = scenario.min_nodes().max(10);
        for spec in [
            AlgorithmSpec::Gathering,
            AlgorithmSpec::Waiting,
            AlgorithmSpec::WaitingGreedy { tau: None },
        ] {
            if !scenario.supports(spec) {
                continue;
            }
            let cfg = BatchConfig {
                n,
                trials: 7,
                horizon: Some(3_000),
                seed: 0xD0DA,
                parallel: false,
            };
            let serial = run_scenario_trials(spec, scenario, &cfg);
            let parallel = run_scenario_trials(
                spec,
                scenario,
                &BatchConfig {
                    parallel: true,
                    ..cfg
                },
            );
            assert_eq!(
                serial, parallel,
                "{spec} diverged between serial and parallel on scenario '{scenario}'"
            );
            assert_eq!(serial.len(), 7);
        }
    }
}

/// Adaptive adversaries run through the sharded runner as first-class
/// streamed scenarios, deterministically (the acceptance criterion of the
/// streaming-first refactor).
#[test]
fn adaptive_scenarios_shard_deterministically() {
    let cfg = BatchConfig {
        n: 24,
        trials: 9,
        horizon: Some(10_000),
        seed: 3,
        parallel: false,
    };
    let serial = run_scenario_trials(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator, &cfg);
    let parallel = run_scenario_trials(
        AlgorithmSpec::Gathering,
        Scenario::AdaptiveIsolator,
        &BatchConfig {
            parallel: true,
            ..cfg
        },
    );
    assert_eq!(serial, parallel);
    assert!(serial
        .iter()
        .all(|r| r.terminated() && r.data_conserved && r.transmissions == 23));
}
