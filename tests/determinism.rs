//! Cross-crate determinism guarantees of the sharded batch runner.
//!
//! The sweep runner shards trials across worker threads, but trial `i`
//! always runs with the sub-seed derived from `(config.seed, i)` no matter
//! which worker executes it — so a parallel batch must be **identical**
//! (summary and raw per-trial results, byte for byte) to the serial batch
//! of the same configuration, and re-running either must reproduce it.

use doda_core::fault::FaultProfile;
use doda_sim::prelude::*;

fn config(n: usize, trials: usize, seed: u64, parallel: bool) -> BatchConfig {
    BatchConfig {
        n,
        trials,
        horizon: None,
        seed,
        parallel,
    }
}

#[test]
fn parallel_and_serial_batches_are_byte_identical() {
    for spec in [
        AlgorithmSpec::Gathering,
        AlgorithmSpec::Waiting,
        AlgorithmSpec::WaitingGreedy { tau: None },
        AlgorithmSpec::OfflineOptimal,
    ] {
        for seed in [1u64, 0xD0DA] {
            let serial = Sweep::scenario(spec, Scenario::Uniform)
                .config(&config(12, 9, seed, false))
                .run_summarized();
            let parallel = Sweep::scenario(spec, Scenario::Uniform)
                .config(&config(12, 9, seed, true))
                .run_summarized();
            assert_eq!(
                serial, parallel,
                "{spec} diverged between serial and parallel for seed {seed}"
            );
        }
    }
}

#[test]
fn batches_are_reproducible_across_runs() {
    let cfg = config(10, 6, 7, true);
    let first = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .config(&cfg)
        .run_summarized();
    let second = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .config(&cfg)
        .run_summarized();
    assert_eq!(first, second);
}

#[test]
fn different_seeds_produce_different_batches() {
    let a = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .config(&config(10, 6, 1, true))
        .run_summarized();
    let b = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .config(&config(10, 6, 2, true))
        .run_summarized();
    assert_ne!(a.1, b.1, "distinct seeds must draw distinct sequences");
}

/// The streamed sharded runner: every entry of the **faulted** scenario
/// registry — the fault-free scenarios plus every fault-profile and
/// Byzantine variant — must produce byte-identical raw results serially
/// and in parallel, for both streamed and materialising algorithms.
#[test]
fn scenario_batches_are_serial_parallel_identical() {
    for scenario in doda::sim::test_support::registry_cases() {
        let n = scenario.min_nodes().max(10);
        for spec in [
            AlgorithmSpec::Gathering,
            AlgorithmSpec::Waiting,
            AlgorithmSpec::WaitingGreedy { tau: None },
        ] {
            if !scenario.supports(spec) {
                continue;
            }
            let cfg = BatchConfig {
                n,
                trials: 7,
                horizon: Some(3_000),
                seed: 0xD0DA,
                parallel: false,
            };
            let serial = Sweep::scenario(spec, scenario).config(&cfg).run();
            let parallel = Sweep::scenario(spec, scenario)
                .config(&BatchConfig {
                    parallel: true,
                    ..cfg
                })
                .run();
            assert_eq!(
                serial, parallel,
                "{spec} diverged between serial and parallel on scenario '{scenario}'"
            );
            assert_eq!(serial.len(), 7);
            // Fault-free entries stay clean; every terminated honest
            // trial (faulted or not) conserves its data — Byzantine
            // entries corrupt the data plane by design.
            if scenario.faults.is_none() {
                assert!(serial.iter().all(|r| r.faults.is_clean()), "{scenario}");
            }
            if scenario.byzantine.is_none() {
                assert!(
                    serial.iter().all(|r| !r.terminated() || r.data_conserved),
                    "{spec} broke conservation on scenario '{scenario}'"
                );
            }
        }
    }
}

/// The fault axis itself is deterministic end to end: re-running a
/// faulted batch reproduces it, distinct fault seeds (via the batch
/// seed) change the outcomes, and the fault events genuinely fire.
#[test]
fn faulted_batches_are_reproducible_and_seed_sensitive() {
    let scenario = Scenario::Uniform.with_faults(FaultProfile {
        loss: 0.1,
        ..FaultProfile::crash(0.002)
    });
    let cfg = BatchConfig {
        n: 16,
        trials: 8,
        horizon: Some(20_000),
        seed: 0xFA7,
        parallel: true,
    };
    let first = Sweep::scenario(AlgorithmSpec::Gathering, scenario)
        .config(&cfg)
        .run();
    let second = Sweep::scenario(AlgorithmSpec::Gathering, scenario)
        .config(&cfg)
        .run();
    assert_eq!(first, second);
    let other_seed = Sweep::scenario(AlgorithmSpec::Gathering, scenario)
        .config(&BatchConfig { seed: 0xFA8, ..cfg })
        .run();
    assert_ne!(
        first, other_seed,
        "distinct seeds must draw distinct faults"
    );
    assert!(
        first.iter().any(|r| !r.faults.is_clean()),
        "the fault plan must fire somewhere in the batch"
    );
}

/// Adaptive adversaries run through the sharded runner as first-class
/// streamed scenarios, deterministically (the acceptance criterion of the
/// streaming-first refactor).
#[test]
fn adaptive_scenarios_shard_deterministically() {
    let cfg = BatchConfig {
        n: 24,
        trials: 9,
        horizon: Some(10_000),
        seed: 3,
        parallel: false,
    };
    let serial = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator)
        .config(&cfg)
        .run();
    let parallel = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator)
        .config(&BatchConfig {
            parallel: true,
            ..cfg
        })
        .run();
    assert_eq!(serial, parallel);
    assert!(serial
        .iter()
        .all(|r| r.terminated() && r.data_conserved && r.transmissions == 23));
}

mod isolator_invariant {
    //! Invariant proptest for the adaptive isolators' cached-pair
    //! revalidation: against *any* evolution of the ownership bitmap —
    //! including the abrupt losses a crash plan produces — the emitted
    //! pair never touches the isolated node (the sink) while isolation
    //! must hold.

    use doda_adversary::{CrashAwareIsolator, IsolatorAdversary};
    use doda_core::prelude::*;
    use doda_graph::NodeId;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Drive both isolators through a random ownership history: at
        /// each step a random subset instruction may strip ownership from
        /// a random node (modelling a transmission *or* a fault-driven
        /// loss — the adversary cannot tell them apart). While at least
        /// two non-sink owners remain, the plain isolator must keep the
        /// sink out of every pair; the crash-aware isolator must never
        /// involve the sink at all.
        #[test]
        fn cached_pair_revalidation_never_leaks_the_isolated_node(
            n in 4usize..16,
            sink_idx in 0usize..16,
            kills in prop::collection::vec(0usize..16, 1..40),
        ) {
            let sink = NodeId(sink_idx % n);
            let mut plain = IsolatorAdversary::new(n);
            let mut aware = CrashAwareIsolator::new(n);
            let mut owns = vec![true; n];
            for (t, kill) in kills.iter().enumerate() {
                let t = t as Time;
                let view = AdversaryView { owns_data: &owns, sink };
                let non_sink_owners = owns
                    .iter()
                    .enumerate()
                    .filter(|&(i, &o)| o && NodeId(i) != sink)
                    .count();

                let pair = plain
                    .next_interaction(t, &view)
                    .expect("owners remain, the isolator never runs dry");
                if non_sink_owners >= 2 {
                    prop_assert!(
                        !pair.involves(sink),
                        "plain isolator leaked the sink at t={} with {} owners",
                        t, non_sink_owners
                    );
                    // Isolation pairs always join two data owners.
                    prop_assert!(view.owns(pair.min()) && view.owns(pair.max()));
                }

                let aware_pair = aware
                    .next_interaction(t, &view)
                    .expect("owners remain, the isolator never runs dry");
                prop_assert!(
                    !aware_pair.involves(sink),
                    "crash-aware isolator touched the sink at t={}",
                    t
                );

                // Random ownership loss, sparing the sink (it never
                // transmits and never dies).
                let victim = NodeId(kill % n);
                if victim != sink {
                    owns[victim.index()] = false;
                }
                // Stop once nothing but the sink owns data.
                if owns
                    .iter()
                    .enumerate()
                    .all(|(i, &o)| !o || NodeId(i) == sink)
                {
                    break;
                }
            }
        }
    }
}
