//! Cross-crate determinism guarantees of the sharded batch runner.
//!
//! The sweep runner shards trials across worker threads, but trial `i`
//! always runs with the sub-seed derived from `(config.seed, i)` no matter
//! which worker executes it — so a parallel batch must be **identical**
//! (summary and raw per-trial results, byte for byte) to the serial batch
//! of the same configuration, and re-running either must reproduce it.

use doda_sim::prelude::*;

fn config(n: usize, trials: usize, seed: u64, parallel: bool) -> BatchConfig {
    BatchConfig {
        n,
        trials,
        horizon: None,
        seed,
        parallel,
    }
}

#[test]
fn parallel_and_serial_batches_are_byte_identical() {
    for spec in [
        AlgorithmSpec::Gathering,
        AlgorithmSpec::Waiting,
        AlgorithmSpec::WaitingGreedy { tau: None },
        AlgorithmSpec::OfflineOptimal,
    ] {
        for seed in [1u64, 0xD0DA] {
            let serial = run_batch_detailed(spec, &config(12, 9, seed, false));
            let parallel = run_batch_detailed(spec, &config(12, 9, seed, true));
            assert_eq!(
                serial, parallel,
                "{spec} diverged between serial and parallel for seed {seed}"
            );
        }
    }
}

#[test]
fn batches_are_reproducible_across_runs() {
    let cfg = config(10, 6, 7, true);
    let first = run_batch_detailed(AlgorithmSpec::Gathering, &cfg);
    let second = run_batch_detailed(AlgorithmSpec::Gathering, &cfg);
    assert_eq!(first, second);
}

#[test]
fn different_seeds_produce_different_batches() {
    let a = run_batch_detailed(AlgorithmSpec::Gathering, &config(10, 6, 1, true));
    let b = run_batch_detailed(AlgorithmSpec::Gathering, &config(10, 6, 2, true));
    assert_ne!(a.1, b.1, "distinct seeds must draw distinct sequences");
}
