//! Workspace smoke test: pins the public `doda::prelude` facade path
//! end-to-end — build a sequence, run `Gathering` through the engine, and
//! assert termination — so any breakage of the re-export surface fails fast.

use doda::graph::NodeId;
use doda::prelude::*;

const SINK: NodeId = NodeId(0);

#[test]
fn prelude_facade_runs_gathering_to_termination() {
    // A 4-node sequence that admits a full aggregation at the sink:
    // 3 -> 2, 2 -> 1, 1 -> 0 is an admissible convergecast.
    let seq = InteractionSequence::from_pairs(4, vec![(2, 3), (1, 2), (0, 1), (0, 2), (0, 3)]);
    let mut algo = Gathering::new();
    let outcome = engine::run_with_id_sets(
        &mut algo,
        &mut seq.source(false),
        SINK,
        EngineConfig::default(),
    )
    .expect("gathering makes only valid decisions");
    assert!(
        outcome.terminated(),
        "gathering must terminate: {outcome:?}"
    );
    assert_eq!(outcome.remaining_owners(), 1);
    assert!(outcome
        .sink_data
        .expect("sink aggregated data")
        .covers_all(4));
}

#[test]
fn facade_modules_are_wired_to_the_member_crates() {
    // Each facade module must expose its crate's flagship type/function.
    let _g: doda::graph::AdjacencyGraph = doda::graph::AdjacencyGraph::new(3);
    let _rng = doda::stats::seeded_rng(7);
    let _w = doda::workloads::UniformWorkload::new(4);
    let _a = doda::adversary::RandomizedAdversary::new(4, 1);
    let spec = doda::sim::AlgorithmSpec::Gathering;
    assert!(!spec.label().is_empty());
}

#[test]
fn doctest_example_from_lib_rs_stays_valid() {
    // Mirror of the crate-level doctest, kept as a plain test so it also
    // runs under harnesses that skip doctests.
    let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 1)]);
    let mut algo = Gathering::new();
    let outcome = engine::run_with_id_sets(
        &mut algo,
        &mut seq.source(false),
        NodeId(0),
        EngineConfig::default(),
    )
    .expect("valid decisions");
    assert!(outcome.terminated());
}
