//! Property tests pinning the resumable engine surface: `step_for(k)`
//! loops — plain, and interrupted by a checkpoint/restore into a fresh
//! engine — are byte-identical to an uninterrupted run, across the
//! Byzantine-free scenario registry, the sweep's execution tiers,
//! budgets, and seeds. (Byzantine entries are out of scope by
//! construction: the sliced path drives the plain engine and cannot
//! reproduce the audited execution.)

use doda::core::data::IdSet;
use doda::core::engine::{Engine, EngineConfig, StepOutcome};
use doda::graph::NodeId;
use doda::prelude::*;
use doda::sim::finish_trial;
use doda::sim::test_support::byzantine_free_registry_cases;
use doda::stats::rng::SeedSequence;
use proptest::prelude::*;

const SINK: NodeId = NodeId(0);

/// The sweep's reference answer for trial 0 of `(spec, scenario, n, seed)`,
/// resolved through whatever execution tier `Auto` picks.
fn reference(spec: AlgorithmSpec, scenario: FaultedScenario, n: usize, seed: u64) -> TrialResult {
    let mut results = Sweep::scenario(spec, scenario)
        .n(n)
        .trials(1)
        .seed(seed)
        .run();
    results.remove(0)
}

/// The same trial through `step_for` slices of `budget` interactions,
/// optionally pausing after `pause_slices` slices to checkpoint and
/// restore into a brand-new engine before continuing.
fn sliced(
    spec: AlgorithmSpec,
    scenario: FaultedScenario,
    n: usize,
    seed: u64,
    budget: u64,
    pause_slices: Option<u32>,
) -> TrialResult {
    let trial_seed = SeedSequence::new(seed).seed(0);
    let mut source = scenario.source(n, trial_seed);
    let mut algorithm = spec.instantiate_online().expect("online spec");
    let horizon = doda::adversary::RandomizedAdversary::default_horizon(n) as u64;
    let config = EngineConfig::sweep(horizon);

    let mut engine: Engine<IdSet> = Engine::new();
    let mut run = engine.begin_run(n, SINK, IdSet::singleton, config);

    let mut until_pause = pause_slices;
    loop {
        let outcome = engine
            .step_for(
                &mut run,
                algorithm.as_mut(),
                &mut source,
                IdSet::singleton,
                budget,
                &mut DiscardTransmissions,
            )
            .expect("step_for");
        if !outcome.can_continue() {
            break;
        }
        if let Some(left) = until_pause.as_mut() {
            if *left > 0 {
                *left -= 1;
            }
            if *left == 0 {
                until_pause = None;
                // Interrupt: snapshot, drop the engine, resume in a new one.
                let snapshot = engine.checkpoint(&run);
                engine = Engine::new();
                run = engine.restore(&snapshot);
                assert_eq!(
                    run.interactions_processed(),
                    snapshot.progress().interactions_processed()
                );
            }
        }
    }
    finish_trial(spec, &engine, engine.finish_run(&run), None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Slicing a run into arbitrary budgets never changes its result, and
    /// neither does pausing it at an arbitrary point to checkpoint/restore
    /// into a fresh engine — across the scenario registry × both online
    /// specs × seeds, against the tier the sweep actually picks.
    #[test]
    fn sliced_and_checkpointed_runs_match_the_sweep(
        scenario_index in 0usize..byzantine_free_registry_cases().len(),
        online in 0u8..2,
        seed in 0u64..1_000,
        budget in 1u64..200,
        pause_slices in 1u32..12,
        extra_nodes in 0usize..6,
    ) {
        let scenario = byzantine_free_registry_cases()[scenario_index];
        let spec = if online == 0 {
            AlgorithmSpec::Waiting
        } else {
            AlgorithmSpec::Gathering
        };
        // The vendored proptest stand-in has no rejection support; skip
        // inapplicable combinations as vacuously passing cases.
        if !scenario.supports(spec) {
            return Ok(());
        }
        let n = scenario.min_nodes().max(8) + extra_nodes;
        if scenario.validate(n).is_err() {
            return Ok(());
        }

        let expected = reference(spec, scenario, n, seed);

        let plain = sliced(spec, scenario, n, seed, budget, None);
        prop_assert_eq!(&plain, &expected, "sliced run diverged from the sweep");

        let resumed = sliced(spec, scenario, n, seed, budget, Some(pause_slices));
        prop_assert_eq!(&resumed, &expected, "checkpoint/restore changed the run");
    }
}

/// A budget of `u64::MAX` is the degenerate slicing: one `step_for` call
/// behaves exactly like `Engine::run`.
#[test]
fn unbounded_budget_is_run_to_completion() {
    for scenario in byzantine_free_registry_cases() {
        let spec = AlgorithmSpec::Gathering;
        if !scenario.supports(spec) {
            continue;
        }
        let n = scenario.min_nodes().max(8);
        if scenario.validate(n).is_err() {
            continue;
        }
        let expected = reference(spec, scenario, n, 42);
        let got = sliced(spec, scenario, n, 42, u64::MAX, None);
        assert_eq!(got, expected, "scenario {scenario} diverged");
    }
}

/// A paused run's checkpoint reports exactly the progress the slices
/// made, and a run restored from it continues from there (not from 0).
#[test]
fn checkpoints_carry_progress() {
    let spec = AlgorithmSpec::Waiting;
    let scenario: FaultedScenario = Scenario::Uniform.into();
    let n = 12;
    let trial_seed = SeedSequence::new(7).seed(0);
    let mut source = scenario.source(n, trial_seed);
    let mut algorithm = spec.instantiate_online().expect("online");
    let horizon = doda::adversary::RandomizedAdversary::default_horizon(n) as u64;

    let mut engine: Engine<IdSet> = Engine::new();
    let mut run = engine.begin_run(n, SINK, IdSet::singleton, EngineConfig::sweep(horizon));
    let outcome = engine
        .step_for(
            &mut run,
            algorithm.as_mut(),
            &mut source,
            IdSet::singleton,
            5,
            &mut DiscardTransmissions,
        )
        .expect("step_for");
    assert_eq!(outcome, StepOutcome::BudgetSpent);

    let snapshot = engine.checkpoint(&run);
    assert_eq!(snapshot.progress().interactions_processed(), 5);

    let mut restored: Engine<IdSet> = Engine::new();
    let resumed = restored.restore(&snapshot);
    assert_eq!(resumed.interactions_processed(), 5);
    assert!(!resumed.terminated());
}
