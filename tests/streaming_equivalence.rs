//! Property suite: streamed and materialised execution are the same
//! computation.
//!
//! For every workload × knowledge-free algorithm × seed, running the
//! engine off the workload's streaming source must produce a
//! [`TrialResult`] **byte-identical** to running it over the materialised
//! sequence of the same seed — the invariant that lets the sweep runner
//! stream knowledge-free algorithms (and drop the `O(horizon)` buffer)
//! without changing a single measured number.

use doda::prelude::*;
use doda::workloads::{
    BodyAreaWorkload, CommunityWorkload, RoundRobinWorkload, TreeRestrictedWorkload,
    UniformWorkload, VehicularWorkload, ZipfWorkload,
};
use proptest::prelude::*;

fn all_workloads(n: usize) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(UniformWorkload::new(n)),
        Box::new(ZipfWorkload::new(n, 1.2)),
        Box::new(CommunityWorkload::new(n, 2, 0.9)),
        Box::new(BodyAreaWorkload::new(n)),
        Box::new(VehicularWorkload::new(n, 3)),
        Box::new(RoundRobinWorkload::all_pairs(n)),
        Box::new(TreeRestrictedWorkload::random_tree(n)),
    ]
}

const STREAMABLE: [AlgorithmSpec; 2] = [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Streamed == materialised, byte for byte, per workload × algorithm.
    #[test]
    fn streamed_equals_materialized(seed in 0u64..1_000_000, n in 4usize..14) {
        let horizon = 6 * n * n;
        let mut runner = TrialRunner::new();
        for workload in all_workloads(n) {
            let seq = workload.generate(horizon, seed);
            for spec in STREAMABLE {
                let materialized = runner.run(spec, &seq, &TrialConfig::default());
                let streamed = runner.run_streamed(
                    spec,
                    workload.source(seed).as_mut(),
                    &TrialConfig {
                        max_interactions: Some(horizon as u64),
                        ..TrialConfig::default()
                    },
                );
                prop_assert_eq!(
                    &streamed,
                    &materialized,
                    "{} diverged on {} (n={}, seed={})",
                    spec,
                    workload.name(),
                    n,
                    seed
                );
            }
        }
    }

    /// The same invariant at the batch level: a workload `Sweep` (which
    /// streams knowledge-free specs) must reproduce a hand-materialised
    /// batch.
    #[test]
    fn batch_streaming_equals_manual_materialization(seed in 0u64..1_000_000) {
        let n = 10;
        let config = BatchConfig {
            n,
            trials: 4,
            horizon: Some(5 * n * n),
            seed,
            parallel: false,
        };
        let workload = UniformWorkload::new(n);
        for spec in STREAMABLE {
            let via_runner = Sweep::workload(spec, &workload).config(&config).run();
            let manual: Vec<TrialResult> = (0..config.trials)
                .map(|trial| {
                    let trial_seed =
                        doda::stats::rng::SeedSequence::new(seed).seed(trial as u64);
                    let seq = workload.generate(config.horizon.unwrap(), trial_seed);
                    run_trial_on_sequence(spec, &seq, &TrialConfig::default())
                })
                .collect();
            prop_assert_eq!(&via_runner, &manual, "{} diverged for seed {}", spec, seed);
        }
    }
}
