//! Property-based suite pinning the [`Aggregate`] contract for every
//! implementation in the workspace: `merge` must be commutative and
//! associative, and the `IDEMPOTENT` / `DUPLICATE_INSENSITIVE` markers
//! must describe behaviour the type actually has — the laws that make a
//! value safe to aggregate in whatever order a dynamic graph delivers it.
//!
//! NaN is in scope on purpose. `MinData`/`MaxData` used to be built on
//! `f64::min`/`max`, which return the non-NaN operand and therefore make
//! `merge(NaN, x) != merge(x, NaN)` — a silent commutativity violation
//! the total-order semantics ([`f64::total_cmp`]) repair. The strategies
//! here draw raw bit patterns, both NaN signs, infinities and signed
//! zeros so that regression cannot reopen. The vendored proptest has no
//! floating-point strategies, so every float is derived from integer
//! draws via `prop_map` (the `fault_model_properties.rs` idiom).

use doda::core::algebra::{Aggregate, DistinctSketch, QuantileSketch};
use doda::core::data::{Count, IdSet, MaxData, MinData, SumData};
use doda::graph::NodeId;
use doda::stats::rng::SeedSequence;
use proptest::prelude::*;

/// Out-of-place `merge`, so laws read as equations.
fn merged<A: Aggregate>(mut a: A, b: A) -> A {
    a.merge(b);
    a
}

/// Every f64, not just the friendly ones: raw bit patterns plus extra
/// weight on the values that break naive float code — both NaN signs,
/// both infinities, both zeros.
fn full_f64() -> impl Strategy<Value = f64> {
    (0u8..12, 0u64..u64::MAX).prop_map(|(kind, bits)| match kind {
        0 => f64::NAN,
        1 => -f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => 0.0,
        5 => -0.0,
        _ => f64::from_bits(bits),
    })
}

/// Dyadic rationals (multiples of 1/64 below 2^20): exactly
/// representable, with exactly representable sums, so the `SumData` laws
/// can be asserted bit-for-bit. On arbitrary floats `+` associates only
/// up to rounding, and on two NaN operands it is not even
/// bit-commutative (the result inherits one operand's payload) — which
/// is why the sensor families only ever feed `SumData` finite readings.
fn dyadic_f64() -> impl Strategy<Value = f64> {
    (-67_108_864i64..67_108_864).prop_map(|v| v as f64 / 64.0)
}

/// Sensor-style readings in `[0, 1)`.
fn unit_reading() -> impl Strategy<Value = f64> {
    (0u32..1_000_000).prop_map(|v| f64::from(v) / 1_000_000.0)
}

/// Readings including the hostile cases a [`QuantileSketch`] must absorb
/// into its edge bins: NaN, infinities, values outside `[lo, hi)`.
fn hostile_reading() -> impl Strategy<Value = f64> {
    (0u8..12, 0u32..1_000_000).prop_map(|(kind, v)| match kind {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 42.0,
        4 => -42.0,
        _ => f64::from(v) / 1_000_000.0,
    })
}

/// Folds items into one [`DistinctSketch`] in slice order.
fn distinct_of(seed: u64, items: &[u64]) -> DistinctSketch {
    let mut sketch = DistinctSketch::singleton(seed, items[0]);
    for &item in &items[1..] {
        sketch.merge(DistinctSketch::singleton(seed, item));
    }
    sketch
}

/// Folds readings into one [`QuantileSketch`] over `[0, 1)` in slice order.
fn quantile_of(readings: &[f64]) -> QuantileSketch {
    let mut sketch = QuantileSketch::singleton(0.0, 1.0, readings[0]);
    for &reading in &readings[1..] {
        sketch.merge(QuantileSketch::singleton(0.0, 1.0, reading));
    }
    sketch
}

/// Deterministic Fisher–Yates permutation driven by [`SeedSequence`] —
/// the merge orders a dynamic graph could deliver, reproducibly.
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let seq = SeedSequence::new(seed);
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = (seq.seed(i as u64) as usize) % (i + 1);
        out.swap(i, j);
    }
    out
}

#[test]
// The whole point is pinning compile-time constants: a PR flipping a
// marker must fail this test, not silently change delivery semantics.
#[allow(clippy::assertions_on_constants)]
fn marker_claims_match_the_type_semantics() {
    // Order-like aggregates absorb both re-merges and re-deliveries.
    assert!(MinData::IDEMPOTENT && MinData::DUPLICATE_INSENSITIVE);
    assert!(MaxData::IDEMPOTENT && MaxData::DUPLICATE_INSENSITIVE);
    assert!(IdSet::IDEMPOTENT && IdSet::DUPLICATE_INSENSITIVE);
    assert!(DistinctSketch::IDEMPOTENT && DistinctSketch::DUPLICATE_INSENSITIVE);
    // Additive aggregates double-count by construction and must not
    // claim otherwise — the service relies on these being `false` to
    // refuse at-least-once transports for them.
    assert!(!Count::IDEMPOTENT && !Count::DUPLICATE_INSENSITIVE);
    assert!(!SumData::IDEMPOTENT && !SumData::DUPLICATE_INSENSITIVE);
    assert!(!QuantileSketch::IDEMPOTENT && !QuantileSketch::DUPLICATE_INSENSITIVE);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Count` is the free commutative monoid on one generator: merge
    /// is exactly `+` on `u64`.
    #[test]
    fn count_merge_is_commutative_and_associative(
        a in 0u64..1 << 32,
        b in 0u64..1 << 32,
        c in 0u64..1 << 32,
    ) {
        let (a, b, c) = (Count(a), Count(b), Count(c));
        prop_assert_eq!(merged(a, b), merged(b, a));
        prop_assert_eq!(merged(merged(a, b), c), merged(a, merged(b, c)));
    }

    /// On dyadic readings `SumData` is exact, so the laws hold
    /// bit-for-bit (see [`dyadic_f64`] for why not arbitrary floats).
    #[test]
    fn sum_merge_is_commutative_and_associative_on_exact_readings(
        a in dyadic_f64(),
        b in dyadic_f64(),
        c in dyadic_f64(),
    ) {
        let (a, b, c) = (SumData(a), SumData(b), SumData(c));
        prop_assert_eq!(merged(a, b).0.to_bits(), merged(b, a).0.to_bits());
        prop_assert_eq!(
            merged(merged(a, b), c).0.to_bits(),
            merged(a, merged(b, c)).0.to_bits()
        );
    }

    /// The total-order min/max laws hold for *every* bit pattern — the
    /// regression this PR exists for. Under `f64::min`-based merge the
    /// commutativity case fails the moment one operand is NaN.
    #[test]
    fn min_max_merge_laws_hold_for_every_bit_pattern(
        a in full_f64(),
        b in full_f64(),
        c in full_f64(),
    ) {
        let (ma, mb, mc) = (MinData(a), MinData(b), MinData(c));
        prop_assert_eq!(merged(ma, mb).0.to_bits(), merged(mb, ma).0.to_bits());
        prop_assert_eq!(
            merged(merged(ma, mb), mc).0.to_bits(),
            merged(ma, merged(mb, mc)).0.to_bits()
        );
        prop_assert_eq!(merged(ma, ma).0.to_bits(), ma.0.to_bits());

        let (xa, xb, xc) = (MaxData(a), MaxData(b), MaxData(c));
        prop_assert_eq!(merged(xa, xb).0.to_bits(), merged(xb, xa).0.to_bits());
        prop_assert_eq!(
            merged(merged(xa, xb), xc).0.to_bits(),
            merged(xa, merged(xb, xc)).0.to_bits()
        );
        prop_assert_eq!(merged(xa, xa).0.to_bits(), xa.0.to_bits());
    }

    /// `IdSet` is set union: all four laws, including absorption of
    /// duplicate origins (the property exact conservation checks lean on).
    #[test]
    fn id_set_merge_is_a_semilattice(
        a in prop::collection::vec(0usize..64, 1..20),
        b in prop::collection::vec(0usize..64, 1..20),
        c in prop::collection::vec(0usize..64, 1..20),
    ) {
        let of = |ids: &[usize]| {
            let mut set = IdSet::singleton(NodeId(ids[0]));
            for &id in &ids[1..] {
                set.merge(IdSet::singleton(NodeId(id)));
            }
            set
        };
        let (a, b, c) = (of(&a), of(&b), of(&c));
        prop_assert_eq!(merged(a.clone(), b.clone()), merged(b.clone(), a.clone()));
        prop_assert_eq!(
            merged(merged(a.clone(), b.clone()), c.clone()),
            merged(a.clone(), merged(b.clone(), c.clone()))
        );
        prop_assert_eq!(merged(a.clone(), a.clone()), a.clone());
        // Duplicate delivery of b's origins changes nothing.
        prop_assert_eq!(
            merged(merged(a.clone(), b.clone()), b.clone()),
            merged(a, b)
        );
    }

    /// Distinct sketches form a semilattice (register max), so merge is
    /// commutative, associative, idempotent and duplicate-insensitive —
    /// at the *representation* level, not only the estimate.
    #[test]
    fn distinct_sketch_merge_is_a_semilattice(
        seed in 0u64..1 << 48,
        a in prop::collection::vec(0u64..1 << 48, 1..32),
        b in prop::collection::vec(0u64..1 << 48, 1..32),
        c in prop::collection::vec(0u64..1 << 48, 1..32),
    ) {
        let (a, b, c) = (distinct_of(seed, &a), distinct_of(seed, &b), distinct_of(seed, &c));
        prop_assert_eq!(merged(a.clone(), b.clone()), merged(b.clone(), a.clone()));
        prop_assert_eq!(
            merged(merged(a.clone(), b.clone()), c.clone()),
            merged(a.clone(), merged(b.clone(), c.clone()))
        );
        prop_assert_eq!(merged(a.clone(), a.clone()), a.clone());
        prop_assert_eq!(
            merged(merged(a.clone(), b.clone()), b.clone()),
            merged(a, b)
        );
    }

    /// Re-inserting an item a sketch has already seen never moves the
    /// estimate — the duplicate-insensitivity that lets gossip
    /// retransmit without double-counting.
    #[test]
    fn distinct_sketch_absorbs_duplicate_items(
        seed in 0u64..1 << 48,
        items in prop::collection::vec(0u64..64, 1..32),
    ) {
        let once = distinct_of(seed, &items);
        let mut twice = items.clone();
        twice.extend_from_slice(&items);
        prop_assert_eq!(once, distinct_of(seed, &twice));
    }

    /// The estimate is a pure function of the item *set*: any seeded
    /// permutation of the merge order yields the same sketch and the
    /// same estimate, bit for bit.
    #[test]
    fn distinct_estimate_is_merge_order_invariant(
        seed in 0u64..1 << 48,
        order_seed in 0u64..1 << 48,
        items in prop::collection::vec(0u64..1 << 48, 2..48),
    ) {
        let forward = distinct_of(seed, &items);
        let permuted = distinct_of(seed, &shuffled(&items, order_seed));
        prop_assert_eq!(&forward, &permuted);
        prop_assert_eq!(forward.estimate().to_bits(), permuted.estimate().to_bits());
    }

    /// Quantile sketches add bin counts exactly, so merge is commutative
    /// and associative at the representation level (on finite in-range
    /// readings, where the histogram state derives `PartialEq` cleanly).
    #[test]
    fn quantile_sketch_merge_is_commutative_and_associative(
        a in prop::collection::vec(unit_reading(), 1..24),
        b in prop::collection::vec(unit_reading(), 1..24),
        c in prop::collection::vec(unit_reading(), 1..24),
    ) {
        let (a, b, c) = (quantile_of(&a), quantile_of(&b), quantile_of(&c));
        prop_assert_eq!(merged(a.clone(), b.clone()), merged(b.clone(), a.clone()));
        prop_assert_eq!(
            merged(merged(a.clone(), b.clone()), c.clone()),
            merged(a.clone(), merged(b.clone(), c.clone()))
        );
    }

    /// Merge-order invariance of the reported quantiles, under hostile
    /// readings too: NaN and out-of-range values clamp into edge bins
    /// the same way regardless of arrival order, and the count, extrema
    /// and quantiles come out bit-identical.
    #[test]
    fn quantile_estimates_are_merge_order_invariant(
        order_seed in 0u64..1 << 48,
        readings in prop::collection::vec(hostile_reading(), 2..48),
    ) {
        let forward = quantile_of(&readings);
        let permuted = quantile_of(&shuffled(&readings, order_seed));
        prop_assert_eq!(forward.count(), permuted.count());
        prop_assert_eq!(forward.min().to_bits(), permuted.min().to_bits());
        prop_assert_eq!(forward.max().to_bits(), permuted.max().to_bits());
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            prop_assert_eq!(forward.quantile(q).to_bits(), permuted.quantile(q).to_bits());
        }
    }
}
