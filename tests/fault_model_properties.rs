//! Conformance suite for the fault model: every invariant of the crash /
//! churn / loss semantics is pinned by a property, so the fault surface
//! cannot drift silently as it grows.
//!
//! The three pillars:
//!
//! 1. **Data conservation** — every datum ever introduced (initial data
//!    plus churn arrivals) is aggregated at the sink, destroyed by a
//!    crash/departure (lost bin), salvaged from a recoverable crash
//!    (recovered bin), or still owned by a live node. Never duplicated,
//!    never silently dropped — checked *exactly* with `Count` data and
//!    as origin-set coverage with `IdSet` data.
//! 2. **Determinism** — a `FaultedSource` is a pure function of
//!    `(inner stream, profile, fault seed)`: the same triple yields the
//!    same event stream, and the fault stream never perturbs the inner
//!    stream's randomness.
//! 3. **Streamed == materialised under faults** — for every workload ×
//!    knowledge-free algorithm × seed, running the engine off
//!    `FaultedSource(workload.source)` is byte-identical to materialising
//!    the workload first and running `FaultedSource(sequence.stream)`
//!    with the same fault plan: the fault layer preserves the PR-3
//!    streaming equivalence.

use doda::core::data::Count;
use doda::core::fault::{FaultProfile, FaultedSource};
use doda::core::outcome::Completion;
use doda::graph::NodeId;
use doda::prelude::*;
use doda::workloads::{
    BodyAreaWorkload, CommunityWorkload, RoundRobinWorkload, TreeRestrictedWorkload,
    UniformWorkload, VehicularWorkload, ZipfWorkload,
};
use proptest::prelude::*;

fn all_workloads(n: usize) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(UniformWorkload::new(n)),
        Box::new(ZipfWorkload::new(n, 1.2)),
        Box::new(CommunityWorkload::new(n, 2, 0.9)),
        Box::new(BodyAreaWorkload::new(n)),
        Box::new(VehicularWorkload::new(n, 3)),
        Box::new(RoundRobinWorkload::all_pairs(n)),
        Box::new(TreeRestrictedWorkload::random_tree(n)),
    ]
}

const STREAMABLE: [AlgorithmSpec; 2] = [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting];

/// A profile strategy spanning the whole fault space: crash (both
/// policies), churn and loss, individually and combined. Probabilities
/// are drawn in basis points (the vendored proptest has integer-range
/// strategies only).
fn profile_strategy() -> impl Strategy<Value = FaultProfile> {
    (0u32..200, 0u32..200, 0u32..500, 0u32..3_000, 0u8..2).prop_map(
        |(crash_bp, departure_bp, arrival_bp, loss_bp, recoverable)| {
            let crash = f64::from(crash_bp) / 10_000.0;
            let base = if recoverable == 1 {
                FaultProfile::crash_recoverable(crash)
            } else {
                FaultProfile::crash(crash)
            };
            FaultProfile {
                departure: f64::from(departure_bp) / 10_000.0,
                arrival: f64::from(arrival_bp) / 10_000.0,
                loss: f64::from(loss_bp) / 10_000.0,
                ..base
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact conservation with `Count` data: at any stopping point (the
    /// executions here may terminate or starve), the sum of the counts at
    /// the sink, in the lost and recovered bins, and at live owners
    /// equals `n + arrivals` — no datum duplicated, none dropped.
    #[test]
    fn every_datum_is_accounted_for_exactly(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        n in 4usize..12,
        profile in profile_strategy(),
        budget in 50u64..4_000,
    ) {
        let workload = UniformWorkload::new(n);
        for spec in STREAMABLE {
            let mut algorithm = spec.instantiate_online().expect("knowledge-free");
            let mut engine: Engine<Count> = Engine::new();
            let mut faulted = FaultedSource::new(
                workload.source(seed),
                profile,
                fault_seed,
            ).expect("profiles from the strategy are valid");
            let stats = engine
                .run(
                    algorithm.as_mut(),
                    &mut faulted,
                    NodeId(0),
                    |_| Count(1),
                    EngineConfig::sweep(budget),
                    &mut DiscardTransmissions,
                )
                .expect("valid decisions and well-formed fault events");

            let at_nodes: u64 = (0..n)
                .filter_map(|i| engine.state().data_of(NodeId(i)))
                .map(|c| c.0)
                .sum();
            let lost = engine.state().lost_data().map_or(0, |c| c.0);
            let recovered = engine.state().recovered_data().map_or(0, |c| c.0);
            prop_assert_eq!(
                at_nodes + lost + recovered,
                stats.data_introduced(),
                "{} leaked or duplicated data (n={}, seed={}, fault_seed={})",
                spec, n, seed, fault_seed
            );
            // The tallies count destroyed *data items* (each possibly an
            // aggregate of several origins), so the origin-counting bins
            // dominate them, with equality when nothing was aggregated
            // before being lost.
            prop_assert!(lost >= stats.faults.data_lost);
            prop_assert!(recovered >= stats.faults.data_recovered);
            prop_assert_eq!(lost == 0, stats.faults.data_lost == 0);
            prop_assert_eq!(recovered == 0, stats.faults.data_recovered == 0);
            // Completion classification is consistent with the tallies.
            match stats.completion {
                Completion::Aggregated => {
                    prop_assert!(stats.terminated());
                    prop_assert_eq!(stats.faults.data_lost + stats.faults.data_recovered, 0);
                }
                Completion::AggregatedSurvivors => {
                    prop_assert!(stats.terminated());
                    prop_assert!(stats.faults.data_lost + stats.faults.data_recovered > 0);
                }
                Completion::Starved => prop_assert!(!stats.terminated()),
            }
            // At termination the sink is the sole owner.
            if stats.terminated() {
                prop_assert_eq!(stats.remaining_owners, 1);
            }
        }
    }

    /// Origin-set conservation with `IdSet` data, via the trial runner:
    /// at termination the sink's origins plus the lost/recovered bins
    /// cover every origin (`data_conserved`), faulted or not.
    #[test]
    fn terminated_faulted_trials_conserve_origins(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        n in 4usize..12,
        profile in profile_strategy(),
    ) {
        let workload = UniformWorkload::new(n);
        let mut runner = TrialRunner::new();
        for spec in STREAMABLE {
            let result = runner.run_streamed(
                spec,
                workload.source(seed).as_mut(),
                &TrialConfig {
                    max_interactions: Some((8 * n * n) as u64),
                    fault: Some(FaultInjection { profile, seed: fault_seed }),
                    ..TrialConfig::default()
                },
            );
            if result.terminated() {
                prop_assert!(
                    result.data_conserved,
                    "{} terminated without conserving origins (n={}, seed={}, fault_seed={})",
                    spec, n, seed, fault_seed
                );
            }
            prop_assert_eq!(result.fully_aggregated(), result.completion == Completion::Aggregated);
        }
    }

    /// A `FaultedSource` is deterministic per `(profile, seed)`: the same
    /// plan over the same inner stream yields the same events, and a
    /// different fault seed yields a different fault placement without
    /// ever perturbing the *inner* interactions' relative order.
    #[test]
    fn faulted_source_is_deterministic_per_seed(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        n in 4usize..10,
        profile in profile_strategy(),
    ) {
        let workload = UniformWorkload::new(n);
        let owns = vec![true; n];
        let view = AdversaryView { owns_data: &owns, sink: NodeId(0) };
        let drain = |fs: u64| -> Vec<StepEvent> {
            let mut source = FaultedSource::new(workload.source(seed), profile, fs)
                .expect("valid profile");
            (0..600u64).map_while(|t| source.next_event(t, &view)).collect()
        };
        let a = drain(fault_seed);
        let b = drain(fault_seed);
        prop_assert_eq!(&a, &b, "same (seed, fault seed) must replay identically");

        // The interaction payload (delivered or lost) is the inner stream
        // in order: stripping fault events recovers a prefix of it.
        let inner: Vec<Interaction> = {
            let mut source = workload.source(seed);
            (0..600u64).map_while(|t| source.next_interaction(t, &view)).collect()
        };
        let replayed: Vec<Interaction> = a.iter().filter_map(|e| match e {
            StepEvent::Interaction(i) | StepEvent::Lost(i) => Some(*i),
            _ => None,
        }).collect();
        prop_assert_eq!(
            &replayed[..],
            &inner[..replayed.len()],
            "the fault layer must never reorder or perturb the inner stream"
        );
    }

    /// The tentpole equivalence: faulted streamed == faulted materialised
    /// for every workload × knowledge-free algorithm × seed, byte for
    /// byte — the fault layer composes with the PR-3 streaming guarantee
    /// instead of breaking it.
    #[test]
    fn faulted_streamed_equals_faulted_materialized(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        n in 4usize..12,
        profile in profile_strategy(),
    ) {
        let horizon = 6 * n * n;
        let injection = FaultInjection { profile, seed: fault_seed };
        let mut runner = TrialRunner::new();
        for workload in all_workloads(n) {
            let seq = workload.generate(horizon, seed);
            for spec in STREAMABLE {
                let config = TrialConfig {
                    max_interactions: Some(horizon as u64),
                    fault: Some(injection),
                    ..TrialConfig::default()
                };
                let materialized = runner.run(spec, &seq, &config);
                let streamed = runner.run_streamed(
                    spec,
                    workload.source(seed).as_mut(),
                    &config,
                );
                prop_assert_eq!(
                    &streamed,
                    &materialized,
                    "{} diverged under faults on {} (n={}, seed={}, fault_seed={})",
                    spec,
                    workload.name(),
                    n,
                    seed,
                    fault_seed
                );
            }
        }
    }
}

/// Crashed nodes stay dead: no event stream from a `FaultedSource` ever
/// revives a crashed slot, and the sink is never removed (directed test
/// over a hostile profile — high churn, high crash).
#[test]
fn crashes_are_permanent_and_the_sink_is_immortal() {
    let n = 8;
    let profile = FaultProfile {
        arrival: 0.3,
        departure: 0.2,
        ..FaultProfile::crash(0.1)
    };
    let workload = UniformWorkload::new(n);
    let owns = vec![true; n];
    for sink in [NodeId(0), NodeId(3)] {
        let view = AdversaryView {
            owns_data: &owns,
            sink,
        };
        let mut source = FaultedSource::new(workload.source(1), profile, 99).unwrap();
        let mut crashed = vec![false; n];
        for t in 0..20_000u64 {
            match source.next_event(t, &view).expect("infinite inner stream") {
                StepEvent::Crash { node, .. } => {
                    assert_ne!(node, sink, "the sink crashed at t={t}");
                    assert!(!crashed[node.index()], "double crash of {node} at t={t}");
                    crashed[node.index()] = true;
                }
                StepEvent::Departure(node) => {
                    assert_ne!(node, sink, "the sink departed at t={t}");
                    assert!(!crashed[node.index()], "departure of crashed {node}");
                }
                StepEvent::Arrival(node) => {
                    assert!(
                        !crashed[node.index()],
                        "crashed node {node} revived at t={t}"
                    );
                }
                StepEvent::Interaction(_) | StepEvent::Lost(_) => {}
            }
        }
        assert!(
            crashed.iter().any(|&c| c),
            "a 10% crash plan must fire over 20k steps"
        );
    }
}

/// Regression (satellite): a fault plan that could drop the live
/// population below 2 nodes is a typed `FaultConfigError` surfaced
/// before any trial runs — never a hang. `Scenario::min_nodes` composes
/// with the plan's floor through `FaultedScenario::min_nodes`.
#[test]
fn under_floored_plans_are_typed_errors_not_hangs() {
    use doda::core::fault::FaultConfigError;

    let plan = FaultProfile {
        min_live: 1,
        ..FaultProfile::churn(0.5, 0.0)
    };
    // Core rejects the profile itself...
    assert_eq!(
        plan.validate(8),
        Err(FaultConfigError::MinLiveTooSmall { min_live: 1 })
    );
    // ...the scenario layer surfaces the same typed error pre-run...
    let scenario = Scenario::Uniform.with_faults(plan);
    assert_eq!(
        scenario.validate(8),
        Err(FaultConfigError::MinLiveTooSmall { min_live: 1 })
    );
    // ...and a floor the node count cannot satisfy raises the scenario's
    // minimum admissible node count.
    let heavy = Scenario::Uniform.with_faults(FaultProfile {
        min_live: 10,
        ..FaultProfile::crash(0.1)
    });
    assert_eq!(heavy.min_nodes(), 10);
    assert_eq!(
        heavy.validate(8),
        Err(FaultConfigError::MinLiveExceedsNodes { min_live: 10, n: 8 })
    );
    assert!(heavy.validate(10).is_ok());
    // The adapter constructor enforces the same contract.
    assert!(FaultedSource::new(UniformWorkload::new(8).source(0), plan, 0).is_err());
}
