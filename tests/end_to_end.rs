//! Cross-crate integration tests: adversaries + workloads + algorithms +
//! cost function, exercised through the public facade crate.

use doda::adversary::{AdaptiveTrap, CycleTrap, ObliviousTrap, RandomizedAdversary};
use doda::core::cost::{cost_of_duration, Cost};
use doda::core::knowledge::MeetTimeOracle;
use doda::graph::NodeId;
use doda::prelude::*;
use doda::stats::harmonic;
use doda::workloads::{
    BodyAreaWorkload, CommunityWorkload, RoundRobinWorkload, TreeRestrictedWorkload,
    UniformWorkload, VehicularWorkload, ZipfWorkload,
};

const SINK: NodeId = NodeId(0);

fn run_spec_on(seq: &InteractionSequence, spec: AlgorithmSpec) -> ExecutionOutcome<IdSet> {
    let mut algorithm = spec
        .instantiate(seq, SINK)
        .expect("algorithm must instantiate on a connected random sequence");
    engine::run_with_id_sets(
        algorithm.as_mut(),
        &mut seq.source(false),
        SINK,
        EngineConfig::default(),
    )
    .expect("valid decisions")
}

#[test]
fn every_algorithm_terminates_and_conserves_data_on_every_workload() {
    let n = 12;
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(UniformWorkload::new(n)),
        Box::new(ZipfWorkload::new(n, 1.0)),
        Box::new(CommunityWorkload::new(n, 3, 0.8)),
        Box::new(BodyAreaWorkload::new(n)),
        Box::new(VehicularWorkload::new(n, 3)),
        Box::new(RoundRobinWorkload::all_pairs(n)),
    ];
    for workload in &workloads {
        let seq = workload.generate(10 * n * n, 0xBEEF);
        for spec in AlgorithmSpec::all() {
            let Some(mut algorithm) = spec.instantiate(&seq, SINK) else {
                continue;
            };
            let outcome = engine::run_with_id_sets(
                algorithm.as_mut(),
                &mut seq.source(false),
                SINK,
                EngineConfig::default(),
            )
            .expect("valid decisions");
            if outcome.terminated() {
                // Data conservation: the sink's value is exactly the set of
                // all origins, and exactly n-1 nodes transmitted.
                assert!(
                    outcome.sink_data.as_ref().unwrap().covers_all(n),
                    "{} on {} lost data",
                    spec,
                    workload.name()
                );
                assert_eq!(outcome.remaining_owners(), 1);
            }
            // One-transmission rule: even without termination, the number of
            // owners only decreases from n and the sink always owns data.
            assert!(outcome.final_ownership[SINK.index()]);
        }
    }
}

#[test]
fn offline_optimal_is_never_beaten_on_shared_sequences() {
    for seed in 0..5u64 {
        let seq = UniformWorkload::new(10).generate(4_000, seed);
        let offline = run_spec_on(&seq, AlgorithmSpec::OfflineOptimal);
        assert!(offline.terminated());
        let off_t = offline.termination_time.unwrap();
        for spec in [
            AlgorithmSpec::Waiting,
            AlgorithmSpec::Gathering,
            AlgorithmSpec::WaitingGreedy { tau: None },
            AlgorithmSpec::FutureBroadcast,
        ] {
            let outcome = run_spec_on(&seq, spec);
            if let Some(t) = outcome.termination_time {
                assert!(off_t <= t, "{spec} beat the offline optimum on seed {seed}");
            }
        }
    }
}

#[test]
fn offline_optimal_cost_is_always_one() {
    for seed in 10..15u64 {
        let seq = UniformWorkload::new(8).generate(2_000, seed);
        let outcome = run_spec_on(&seq, AlgorithmSpec::OfflineOptimal);
        let cost = cost_of_duration(&seq, SINK, outcome.termination_time, 64);
        assert!(cost.is_optimal(), "seed {seed}: cost {cost}");
    }
}

#[test]
fn expected_interaction_counts_match_the_closed_forms() {
    // Average over independent trials and compare against the exact
    // expectations used in the proofs of Theorems 8 and 9 (±25%).
    let n = 24;
    let trials = 30;
    let mut sums = [0.0f64; 3];
    for trial in 0..trials {
        let seq = RandomizedAdversary::new(n, 1000 + trial).generate_sequence(8 * n * n);
        for (i, spec) in [
            AlgorithmSpec::OfflineOptimal,
            AlgorithmSpec::Gathering,
            AlgorithmSpec::Waiting,
        ]
        .iter()
        .enumerate()
        {
            let outcome = run_spec_on(&seq, *spec);
            sums[i] += (outcome.termination_time.expect("terminates") + 1) as f64;
        }
    }
    let means: Vec<f64> = sums.iter().map(|s| s / trials as f64).collect();
    let expected = [
        harmonic::expected_full_knowledge_interactions(n),
        harmonic::expected_gathering_interactions(n),
        harmonic::expected_waiting_interactions(n),
    ];
    for ((mean, exp), label) in
        means
            .iter()
            .zip(expected.iter())
            .zip(["offline", "gathering", "waiting"])
    {
        let ratio = mean / exp;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "{label}: measured {mean:.1} vs expected {exp:.1} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn waiting_greedy_beats_gathering_and_respects_tau() {
    let n = 64;
    let tau = harmonic::waiting_greedy_tau(n);
    let mut wg_wins = 0;
    let trials = 10;
    for seed in 0..trials {
        let seq = UniformWorkload::new(n).generate(8 * n * n, seed);
        let oracle = MeetTimeOracle::new(&seq, SINK);
        let mut wg = WaitingGreedy::new(tau, oracle);
        let wg_outcome = engine::run_with_id_sets(
            &mut wg,
            &mut seq.source(false),
            SINK,
            EngineConfig::default(),
        )
        .unwrap();
        let gathering_outcome = run_spec_on(&seq, AlgorithmSpec::Gathering);
        let (Some(wg_t), Some(g_t)) = (
            wg_outcome.termination_time,
            gathering_outcome.termination_time,
        ) else {
            panic!("both algorithms should terminate on an 8n² horizon");
        };
        if wg_t < g_t {
            wg_wins += 1;
        }
    }
    assert!(
        wg_wins >= trials * 7 / 10,
        "Waiting Greedy should beat Gathering on most sequences at n = {n} (won {wg_wins}/{trials})"
    );
}

#[test]
fn adversarial_traps_produce_unbounded_cost_for_online_algorithms() {
    // Adaptive trap vs Gathering.
    let horizon = 3_000;
    let mut trap = AdaptiveTrap::new();
    let mut gathering = Gathering::new();
    let outcome = engine::run_with_id_sets(
        &mut gathering,
        &mut trap,
        AdaptiveTrap::SINK,
        EngineConfig::with_max_interactions(horizon),
    )
    .unwrap();
    assert!(!outcome.terminated());

    // Oblivious trap: the materialised sequence keeps admitting convergecasts,
    // so the cost of the non-terminating run exceeds any horizon we test.
    let trap = ObliviousTrap::for_greedy_algorithms(8);
    let seq = trap.materialize(5_000);
    let cost = cost_of_duration(&seq, ObliviousTrap::SINK, None, 40);
    assert_eq!(cost, Cost::ExceedsHorizon { checked: 40 });

    // 4-cycle trap vs the spanning-tree algorithm.
    let underlying = CycleTrap::underlying_graph();
    let mut spanning =
        SpanningTreeAggregation::from_underlying_graph(&underlying, CycleTrap::SINK).unwrap();
    let mut trap = CycleTrap::new();
    let outcome = engine::run_with_id_sets(
        &mut spanning,
        &mut trap,
        CycleTrap::SINK,
        EngineConfig::with_max_interactions(horizon),
    )
    .unwrap();
    assert!(!outcome.terminated());
}

#[test]
fn tree_restricted_sequences_make_spanning_tree_optimal() {
    let n = 10;
    let workload = TreeRestrictedWorkload::random_tree(n);
    for seed in 0..5u64 {
        let seq = workload.generate(60 * n, seed);
        let underlying = seq.underlying_graph();
        let Some(mut algo) = SpanningTreeAggregation::from_underlying_graph(&underlying, SINK)
        else {
            continue;
        };
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            SINK,
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated(), "seed {seed}");
        let cost = cost_of_duration(&seq, SINK, outcome.termination_time, 128);
        assert!(cost.is_optimal(), "seed {seed}: cost {cost}");
    }
}

#[test]
fn future_broadcast_cost_is_at_most_n_across_workloads() {
    let n = 8;
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(UniformWorkload::new(n)),
        Box::new(CommunityWorkload::new(n, 2, 0.7)),
        Box::new(RoundRobinWorkload::all_pairs(n)),
    ];
    for workload in &workloads {
        let seq = workload.generate(10 * n * n, 77);
        let mut algo = FutureBroadcast::new(&seq, SINK);
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            SINK,
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated(), "{}", workload.name());
        match cost_of_duration(&seq, SINK, outcome.termination_time, 8 * n as u64) {
            Cost::Finite(c) => assert!(
                c <= n as u64,
                "{}: cost {c} exceeds n = {n}",
                workload.name()
            ),
            other => panic!("{}: unexpected cost {other}", workload.name()),
        }
    }
}
