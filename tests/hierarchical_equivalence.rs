//! Property suite: the hierarchical tier is anchored to flat aggregation
//! on **count-style outcomes** — completion classification and the
//! conserved origin set.
//!
//! Unlike the lane and round tiers, the hierarchical tier runs a
//! genuinely different interaction process (clusters aggregate locally,
//! then an aggregator-only phase finishes the job), so per-trial byte
//! equality with the scalar reference is impossible — and not the
//! contract. What the tier does promise, and these properties pin:
//!
//! 1. **Outcome equivalence** — for every fault-free registry scenario ×
//!    knowledge-free algorithm × seed, under a budget generous enough for
//!    flat completion, a hierarchical trial reaches the same terminal
//!    classification as the flat scalar trial: both complete as
//!    [`Completion::Aggregated`] with the sink's origin set covering all
//!    `n` origins (`data_conserved`), or both starve.
//! 2. **Conservation** — a hierarchical trial that terminates is always
//!    fully aggregated with a conserved origin set, at any budget (a
//!    terminated-but-unconserved trial would be a model violation).
//! 3. **Serial/parallel invariance** — hierarchical sweeps are
//!    byte-identical across worker counts, like every other tier.
//! 4. **Opt-in only** — [`ExecutionTier::Auto`] never routes to the
//!    hierarchical path; it runs a different process and must be chosen
//!    explicitly.

use doda::prelude::*;
use proptest::prelude::*;

/// The knowledge-free algorithms — the specs the hierarchical tier admits.
const HIERARCHICAL: [AlgorithmSpec; 2] = [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting];

/// A cluster size that satisfies a scenario's per-phase minimum node
/// count, and the smallest `n` at which *both* hierarchy phases do: with
/// `k` nodes per cluster, the aggregator phase only reaches the scenario
/// minimum once there are at least `k - 1` clusters, i.e. `n > k(k - 1)`.
fn hierarchy_dims_for(scenario: Scenario, n_base: usize) -> (usize, usize) {
    let k = scenario.min_nodes().max(6);
    (k, n_base.max(k * (k - 1) + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Hierarchical ≡ flat on completion classification and origin
    /// conservation, for every fault-free registry scenario ×
    /// knowledge-free algorithm × seed.
    #[test]
    fn hierarchical_matches_flat_outcomes(
        seed in 0u64..1_000_000,
        n_base in 40usize..56,
    ) {
        for scenario in Scenario::registry() {
            for spec in HIERARCHICAL {
                let (k, n) = hierarchy_dims_for(scenario, n_base);
                let sweep = |tier| {
                    Sweep::scenario(spec, scenario)
                        .n(n)
                        .trials(1)
                        .seed(seed)
                        .horizon(Some(120_000))
                        .tier(tier)
                        .cluster_size(k)
                };
                let hier = &sweep(ExecutionTier::Hierarchical).run()[0];
                let flat = &sweep(ExecutionTier::Scalar).run()[0];
                prop_assert_eq!(
                    hier.completion,
                    flat.completion,
                    "{} on {} (n={}, seed={}): hierarchical classified {:?}, flat {:?}",
                    spec, scenario, n, seed, hier.completion, flat.completion
                );
                prop_assert_eq!(
                    hier.data_conserved,
                    flat.data_conserved,
                    "{} on {} (n={}, seed={}): origin conservation diverged",
                    spec, scenario, n, seed
                );
                if hier.terminated() {
                    prop_assert!(
                        hier.fully_aggregated() && hier.data_conserved,
                        "{} on {}: terminated hierarchical trial must aggregate \
                         every origin at the sink",
                        spec, scenario
                    );
                }
            }
        }
    }

    /// A terminated hierarchical trial conserves every origin even under
    /// tight budgets that stop most trials mid-phase.
    #[test]
    fn terminated_hierarchical_trials_conserve_origins(
        seed in 0u64..1_000_000,
        budget in 200usize..20_000,
    ) {
        for scenario in [Scenario::Uniform, Scenario::Vehicular, Scenario::TorusContact] {
            for spec in HIERARCHICAL {
                for trial in Sweep::scenario(spec, scenario)
                    .n(42)
                    .trials(3)
                    .seed(seed)
                    .horizon(Some(budget))
                    .tier(ExecutionTier::Hierarchical)
                    .run()
                {
                    prop_assert_eq!(
                        trial.terminated(),
                        trial.fully_aggregated() && trial.data_conserved,
                        "{} on {} (budget {}): termination and conservation \
                         must coincide for fault-free hierarchical trials",
                        spec, scenario, budget
                    );
                }
            }
        }
    }

    /// Hierarchical sweeps are serial/parallel byte-identical: trial `i`
    /// draws sub-seed `i` regardless of worker sharding.
    #[test]
    fn hierarchical_sweeps_are_serial_parallel_identical(seed in 0u64..1_000_000) {
        for scenario in [Scenario::Uniform, Scenario::ObliviousTrap, Scenario::TorusContact] {
            for spec in HIERARCHICAL {
                let (k, n) = hierarchy_dims_for(scenario, 30);
                let sweep = || {
                    Sweep::scenario(spec, scenario)
                        .n(n)
                        .trials(9)
                        .seed(seed)
                        .horizon(Some(60_000))
                        .tier(ExecutionTier::Hierarchical)
                        .cluster_size(k)
                };
                let serial = sweep().parallel(false).run();
                let parallel = sweep().parallel(true).run();
                prop_assert_eq!(
                    &serial,
                    &parallel,
                    "{} diverged between serial and parallel hierarchical sweeps on {}",
                    spec,
                    scenario
                );
            }
        }
    }
}

/// The auto tier never routes to the hierarchical path — it runs a
/// different interaction process and must be opted into explicitly.
#[test]
fn auto_never_resolves_to_hierarchical() {
    for scenario in Scenario::registry() {
        for spec in HIERARCHICAL {
            let auto = Sweep::scenario(spec, scenario)
                .n(16)
                .trials(1)
                .horizon(Some(1_000))
                .path_label();
            assert_ne!(auto, "hierarchical", "{spec} on {scenario} auto-routed");
        }
    }
    let forced = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .n(16)
        .trials(1)
        .tier(ExecutionTier::Hierarchical)
        .path_label();
    assert_eq!(forced, "hierarchical");
}
