//! Conformance suite for the Byzantine data plane: pins which aggregate
//! kinds *detect*, which *tolerate*, and which are *silently corrupted*
//! by each lying strategy — and that the Byzantine wrapper is fully
//! transparent when it fields no liars.
//!
//! The detect/tolerate matrix is a contract, not an emergent property:
//! exactly conserved aggregates (`Count`, `Sum`, and the `IdSet`
//! reference) expose any unit-count discrepancy, duplicate-insensitive
//! idempotent sketches (`Min`, `Max`, `Distinct`) absorb re-delivery and
//! forged initial data, and the quantile sketch — neither conserved nor
//! idempotent over forgeries — is silently wrong under every strategy.
//! A change to any row must show up here as a deliberate edit.

use doda_core::byzantine::{ByzantineProfile, ByzantineStrategy, Verdict};
use doda_sim::test_support::{byzantine_free_registry_cases, registry_cases};
use doda_sim::{AggregateKind, AlgorithmSpec, ExecutionTier, Scenario, Sweep};
use proptest::prelude::*;

const STRATEGIES: [ByzantineStrategy; 4] = [
    ByzantineStrategy::Forge,
    ByzantineStrategy::Duplicate,
    ByzantineStrategy::DropCarried,
    ByzantineStrategy::Equivocate,
];

const KINDS: [AggregateKind; 7] = [
    AggregateKind::IdSet,
    AggregateKind::Count,
    AggregateKind::Sum,
    AggregateKind::Min,
    AggregateKind::Max,
    AggregateKind::Distinct,
    AggregateKind::Quantile,
];

fn profile_for(strategy: ByzantineStrategy, fraction: f64) -> ByzantineProfile {
    match strategy {
        ByzantineStrategy::Forge => ByzantineProfile::forge(fraction),
        ByzantineStrategy::Duplicate => ByzantineProfile::duplicate(fraction),
        ByzantineStrategy::DropCarried => ByzantineProfile::drop_carried(fraction),
        ByzantineStrategy::Equivocate => ByzantineProfile::equivocate(fraction),
    }
}

/// The pinned matrix: the verdict label every corrupted run must carry,
/// per aggregate kind and strategy.
fn expected_verdict(kind: AggregateKind, strategy: ByzantineStrategy) -> &'static str {
    use AggregateKind::*;
    use ByzantineStrategy::*;
    match (kind, strategy) {
        // The exact origin set is duplicate-insensitive, so re-delivery
        // is absorbed before exact conservation would flag it.
        (IdSet, Duplicate) => "tolerated",
        (IdSet, _) => "detected",
        // Exactly conserved scalars expose every strategy.
        (Count | Sum, _) => "detected",
        // Idempotent range-bounded aggregates absorb re-delivery and a
        // forged initial datum, but a dropped contribution cannot be
        // told from one that never arrived.
        (Min | Max | Distinct, Duplicate | Forge) => "tolerated",
        (Min | Max | Distinct, DropCarried | Equivocate) => "corrupted",
        // The quantile sketch is neither conserved nor idempotent over
        // forgeries: silently wrong under every strategy.
        (Quantile, _) => "corrupted",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The detect/tolerate/corrupt matrix, exercised end to end: 10%
    /// liars over uniform Gathering, every strategy against every
    /// aggregate kind, arbitrary seeds and population sizes.
    #[test]
    fn the_verdict_matrix_is_pinned(seed in 0u64..(1u64 << 48), n in 32usize..64) {
        for strategy in STRATEGIES {
            for kind in KINDS {
                let results = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
                    .byzantine(profile_for(strategy, 0.1))
                    .n(n)
                    .trials(1)
                    .seed(seed)
                    .horizon(Some(20_000))
                    .parallel(false)
                    .aggregate(kind)
                    .run();
                for result in &results {
                    let verdict = result
                        .verdict
                        .expect("byzantine runs always carry a verdict");
                    prop_assert_eq!(
                        verdict.label(),
                        expected_verdict(kind, strategy),
                        "{:?} under {:?} (n = {}, seed = {})",
                        kind,
                        strategy,
                        n,
                        seed
                    );
                    if let Verdict::Detected { evidence } = verdict {
                        prop_assert_eq!(evidence.strategy, strategy);
                    }
                }
            }
        }
    }

    /// Wrapper transparency: a 0%-Byzantine plan routes through the
    /// audited engine yet reproduces the honest run byte for byte —
    /// across the full scenario registry, the auto and forced-scalar
    /// tiers, and arbitrary seeds. Only the verdict differs: audited
    /// runs carry `Clean`, honest runs carry none.
    #[test]
    fn a_zero_fraction_plan_is_byte_transparent(
        seed in 0u64..(1u64 << 48),
        strategy_index in 0usize..4,
    ) {
        let profile = profile_for(STRATEGIES[strategy_index], 0.0);
        for scenario in byzantine_free_registry_cases() {
            let n = scenario.min_nodes().max(10);
            for spec in [
                AlgorithmSpec::Gathering,
                AlgorithmSpec::Waiting,
                AlgorithmSpec::WaitingGreedy { tau: None },
            ] {
                if !scenario.supports(spec) {
                    continue;
                }
                for tier in [ExecutionTier::Auto, ExecutionTier::Scalar] {
                    let sweep = || {
                        Sweep::scenario(spec, scenario)
                            .n(n)
                            .trials(3)
                            .seed(seed)
                            .horizon(Some(2_000))
                            .parallel(false)
                            .tier(tier)
                    };
                    let honest = sweep().run();
                    let mut audited = sweep().byzantine(profile).run();
                    for result in &mut audited {
                        prop_assert_eq!(
                            result.verdict,
                            Some(Verdict::Clean),
                            "a zero-fraction audited run must classify Clean"
                        );
                        result.verdict = None;
                    }
                    prop_assert!(
                        honest.iter().all(|r| r.verdict.is_none()),
                        "honest runs never carry a verdict"
                    );
                    prop_assert_eq!(
                        audited,
                        honest,
                        "{} on '{}' ({:?} tier) diverged under a liar-free plan",
                        spec,
                        scenario,
                        tier
                    );
                }
            }
        }
    }
}

/// Every Byzantine registry entry yields a verdict on every trial;
/// honest entries never do. The invariant the service wire and the
/// bench column lean on.
#[test]
fn registry_verdict_presence_matches_the_plan() {
    for scenario in registry_cases() {
        let n = scenario.min_nodes().max(10);
        let results = Sweep::scenario(AlgorithmSpec::Gathering, scenario)
            .n(n)
            .trials(2)
            .seed(0xD0DA)
            .horizon(Some(2_000))
            .parallel(false)
            .run();
        for result in &results {
            assert_eq!(
                result.verdict.is_some(),
                scenario.byzantine.is_some(),
                "verdict presence must track the byzantine plan on '{scenario}'"
            );
        }
    }
}

/// Detection is not a fluke of one seed: with 10% forgers under the
/// exactly conserved `Count`, every seed of a modest sweep is caught,
/// and the evidence names a forging liar other than the sink.
#[test]
fn count_detects_every_forged_sweep() {
    let results = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .byzantine(ByzantineProfile::forge(0.1))
        .n(48)
        .trials(16)
        .seed(0xD0DA)
        .parallel(false)
        .aggregate(AggregateKind::Count)
        .run();
    assert_eq!(results.len(), 16);
    for result in &results {
        match result.verdict {
            Some(Verdict::Detected { evidence }) => {
                assert_eq!(evidence.strategy, ByzantineStrategy::Forge);
                assert_ne!(evidence.liar.0, 0, "the sink is never a liar");
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }
}
