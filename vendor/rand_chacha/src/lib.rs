//! Offline stand-in for the `rand_chacha` crate: a genuine ChaCha8 stream
//! cipher core behind the `ChaCha8Rng` name, implementing the workspace's
//! `rand` shim traits.
//!
//! Stream output is deterministic in the seed (the property the workspace
//! relies on for bit-for-bit reproducible experiments) but is not guaranteed
//! to be byte-identical to the upstream `rand_chacha` stream.

#![forbid(unsafe_code)]

/// Re-export of the core traits, mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

const CHACHA8_ROUNDS: usize = 8;

/// A deterministic RNG backed by the ChaCha stream cipher with 8 rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block (constants, key, counter, nonce).
    state: [u32; 16],
    /// The current 64-byte output block, as 16 little-endian words.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means "exhausted".
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the next 64-byte block and advances the block counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA8_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in self.block.iter_mut().zip(working.iter()) {
            *out = *inp;
        }
        for (out, inp) in self.block.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64) | ((self.state[13] as u64) << 32);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" sigma constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..16 (counter and nonce) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words are already in the block, so one
        // predictable branch replaces the two refill checks (and the
        // `>= 15` bound lets the compiler elide both array bounds
        // checks). Identical output to two `next_u32` calls — the slow
        // path below is that exact composition, covering reads that
        // touch or span a refill.
        if self.index < 15 {
            let lo = self.block[self.index] as u64;
            let hi = self.block[self.index + 1] as u64;
            self.index += 2;
            return lo | (hi << 32);
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn blocks_are_not_constant() {
        // 3 blocks worth of words must not all be equal (the counter moves).
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u32> = (0..48).map(|_| rng.next_u32()).collect();
        assert!(words.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let expect = [b.next_u64().to_le_bytes(), b.next_u64().to_le_bytes()].concat();
        assert_eq!(&buf[..], &expect[..]);
    }
}
