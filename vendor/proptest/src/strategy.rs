//! The [`Strategy`] trait and the combinators used by the workspace:
//! integer ranges, tuples, `prop_map`, and `collection::vec`.

use crate::test_runner::TestRng;
use core::ops::Range;

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `new_value`
/// produces one value directly instead of a value tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from the deterministic stream `rng`.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        S::new_value(self, rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Strategy for `Vec`s with strategy-drawn length and elements.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.clone().new_value(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Creates a strategy generating vectors of `element` values whose length
/// is drawn uniformly from `size`. Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
