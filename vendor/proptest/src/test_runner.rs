//! Configuration, failure type, and the deterministic stream behind the
//! `proptest!` stand-in.

use core::fmt;

/// Per-test configuration. Only `cases` is honoured by the stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (counts as a skipped case upstream; the
    /// stand-in treats it as a failure so rejection loops cannot hide).
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected case with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic SplitMix64 stream driving value generation.
///
/// Seeded from the test name so every property has an independent,
/// reproducible stream; there is no environment-dependent entropy.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the stream for the named test (FNV-1a over the name).
    ///
    /// By default the stream is fixed per test so failures reproduce
    /// exactly; set `PROPTEST_SEED=<u64>` to mix a session seed in and
    /// explore a different slice of the input space (e.g. a rotating seed
    /// in a nightly CI job).
    pub fn deterministic(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            hash ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_name_dependent() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn config_default_is_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
    }
}
