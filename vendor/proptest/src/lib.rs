//! Offline stand-in for the subset of `proptest` used by this workspace.
//!
//! Provides the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros, a
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range and tuple strategies, and
//! `prop::collection::vec`, all driven by a deterministic SplitMix64 stream
//! seeded from the test name. Unlike the real `proptest` there is no
//! shrinking: a failing case panics with the generated inputs so it can be
//! reproduced (generation is fully deterministic per test).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec`).
    pub use crate::strategy::{vec, VecStrategy};
}

pub mod prop {
    //! Namespace mirror of `proptest::prop`, so `prop::collection::vec`
    //! resolves after `use proptest::prelude::*`.
    pub use crate::collection;
}

pub mod prelude {
    //! The glob-importable prelude, mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests over strategy-generated inputs.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0u64..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __doda_config: $crate::test_runner::ProptestConfig = $config;
                let mut __doda_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __doda_case in 0..__doda_config.cases {
                    let mut __doda_inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let __doda_value = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut __doda_rng,
                        );
                        __doda_inputs.push(::std::format!(
                            ::std::concat!(::std::stringify!($pat), " = {:?}"),
                            &__doda_value
                        ));
                        let $pat = __doda_value;
                    )+
                    let __doda_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__doda_err) = __doda_result {
                        ::std::panic!(
                            "proptest case {}/{} of `{}` failed: {}\n  inputs: {}",
                            __doda_case + 1,
                            __doda_config.cases,
                            stringify!($name),
                            __doda_err,
                            __doda_inputs.join(", "),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (rather
/// than panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__doda_left, __doda_right) = (&$left, &$right);
        $crate::prop_assert!(
            *__doda_left == *__doda_right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __doda_left,
            __doda_right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__doda_left, __doda_right) = (&$left, &$right);
        $crate::prop_assert!(*__doda_left == *__doda_right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__doda_left, __doda_right) = (&$left, &$right);
        $crate::prop_assert!(
            *__doda_left != *__doda_right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __doda_left
        );
    }};
}
