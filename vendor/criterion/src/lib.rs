//! Offline stand-in for the subset of `criterion` used by the doda bench
//! targets (`harness = false` benchmarks).
//!
//! Behaviour:
//! - `cargo bench -- --test` (or any run whose args contain `--test`) runs
//!   every registered benchmark closure exactly once and reports `ok`, which
//!   is what the CI bench-smoke job exercises.
//! - A plain `cargo bench` times each closure over `sample_size` iterations
//!   and prints a mean wall-clock time per iteration.
//! - Positional arguments act as substring filters on the benchmark id,
//!   mirroring criterion's filter behaviour.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Returns `value` while discouraging the optimiser from const-folding it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Calls `routine` repeatedly (once in test mode) and records timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iterations.max(1) as f64;
    }
}

/// Entry point holding the parsed command-line configuration.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
}

/// Flags that take no value; anything else starting with `-` is assumed to
/// consume the following token (e.g. `--sample-size 20`), so that values
/// never leak into the positional filter list.
const VALUELESS_FLAGS: &[&str] = &[
    "--test",
    "--bench",
    "--list",
    "--exact",
    "--quiet",
    "--verbose",
    "--nocapture",
];

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if VALUELESS_FLAGS.contains(&s) || s.contains('=') => {}
                // A value-bearing flag: drop its value too.
                s if s.starts_with('-') => {
                    if args.peek().is_some_and(|next| !next.starts_with('-')) {
                        args.next();
                    }
                }
                s => filters.push(s.to_owned()),
            }
        }
        Criterion { test_mode, filters }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        if !self.criterion.matches(&id) {
            return self;
        }
        let mut bencher = Bencher {
            iterations: if self.criterion.test_mode {
                1
            } else {
                self.sample_size as u64
            },
            last_mean_ns: 0.0,
        };
        routine(&mut bencher);
        if self.criterion.test_mode {
            eprintln!("test {id} ... ok");
        } else {
            eprintln!(
                "{id}: {:.1} ns/iter (mean over {} iterations)",
                bencher.last_mean_ns, bencher.iterations
            );
        }
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = "Runs the benchmark targets registered by `criterion_group!`."]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bencher_runs_the_routine() {
        let mut bencher = Bencher {
            iterations: 3,
            last_mean_ns: 0.0,
        };
        let mut count = 0u64;
        bencher.iter(|| count += 1);
        assert_eq!(count, 3);
    }
}
