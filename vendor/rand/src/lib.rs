//! Offline stand-in for the subset of the `rand` crate API used by this
//! workspace.
//!
//! The build container has no network access and no crates.io registry
//! cache, so the real `rand` cannot be fetched. This crate reimplements the
//! traits the workspace relies on (`RngCore`, `SeedableRng`, `Rng`) with
//! compatible names and semantics so that swapping in the real `rand` later
//! is a one-line manifest change. Only the API surface exercised by the
//! workspace is provided.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
///
/// Mirrors `rand_core::RngCore` (minus the fallible `try_fill_bytes`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
///
/// Mirrors `rand_core::SeedableRng`. `seed_from_u64` expands the 64-bit
/// state with SplitMix64; upstream's default uses a PCG32-based expansion
/// instead, so seeded streams are deterministic here but **not**
/// byte-identical to the real `rand` — swapping in the real crates changes
/// every seeded stream (recorded experiment tables would shift).
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled from the "standard" distribution of `gen()`.
///
/// Stand-in for `Standard: Distribution<T>` in the real crate.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
///
/// Stand-in for `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The span of a half-open range over a <= 64-bit type always
                // fits in u64, so the `x mod span` reduction runs as one
                // hardware division instead of a software u128 remainder —
                // the exact same mapping, an order of magnitude cheaper on
                // the hot sweep paths.
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u64;
                let offset = rng.next_u64() % span;
                ((self.start as i128).wrapping_add(offset as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let diff = (end as i128).wrapping_sub(start as i128) as u64;
                // `diff == u64::MAX` means the span is 2^64: every u64 is in
                // range and `x mod 2^64` is `x` itself.
                let offset = match diff.checked_add(1) {
                    Some(span) => rng.next_u64() % span,
                    None => rng.next_u64(),
                };
                ((start as i128).wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

/// User-facing convenience methods on any `RngCore`.
///
/// Mirrors the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
