//! Offline stand-in for the subset of `parking_lot` used by this workspace,
//! backed by `std::sync` primitives.
//!
//! Like the real `parking_lot`, the lock methods do not return poison
//! errors: a poisoned std lock is transparently recovered, matching
//! `parking_lot`'s poison-free semantics.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose methods cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        assert_eq!(l.into_inner(), "ab");
    }
}
